// Package resolve provides the shared entity-resolution layer: a
// concurrency-safe, memoized cache over fuzzy label lookup.
//
// Every KATARA stage — candidate generation (§4.1), annotation coverage
// (§6.1) and repair candidate enumeration (§6.2) — resolves table cell
// strings to KB resources. Real tables repeat values heavily (a Capital
// column mentions each city once per country row, a Country column far more
// often), so resolving each distinct value once and memoizing the answer
// removes most of the fuzzy-lookup work. The cache is built once per Cleaner
// and threaded through discovery, annotation and repair; all of them see the
// same memo, so a value resolved during discovery is free during annotation.
package resolve

import (
	"sync"
	"sync/atomic"

	"katara/internal/rdf"
	"katara/internal/similarity"
	"katara/internal/telemetry"
)

// Source is anything that can resolve a cell value to KB resources.
// *rdf.Store and *Cache both satisfy it; pipeline stages accept a Source so
// they run identically with or without caching.
type Source interface {
	MatchLabel(value string, threshold float64) []rdf.LabelMatch
}

// shardCount is a power of two so shard selection is a mask. 16 shards keeps
// lock contention negligible at the worker counts discovery uses.
const shardCount = 16

type shard struct {
	mu sync.RWMutex
	m  map[string][]rdf.LabelMatch
}

// Cache memoizes rdf.Store.MatchLabel keyed on the normalized cell value.
// It is safe for concurrent use under the store's single-writer contract:
// any number of goroutines may resolve concurrently while the store is
// quiescent; if the store gains labels (annotation enrichment does this
// between stages), the cache notices via Store.LabelGen and flushes itself.
type Cache struct {
	kb        *rdf.Store
	threshold float64

	gen     atomic.Uint64 // label generation the memo was built against
	flushMu sync.Mutex    // serialises syncs so racing readers sync once

	shards [shardCount]shard

	// Reverse index over memoised keys, for per-label invalidation: given a
	// newly indexed label, a relaxed trigram probe finds every cached value
	// the label could now match (see sync). keysIx is single-writer
	// (similarity.Index.Add is not concurrency-safe), so keysMu serialises
	// both registration and probes; keys are never removed — the index is a
	// monotone over-approximation of the live memo, and deleting a key that
	// has already been evicted is a no-op.
	keysMu   sync.Mutex
	keysIx   *similarity.Index
	keysSeen map[string]bool

	hits, misses atomic.Int64
	// invalidations counts individually evicted memo entries; flushes counts
	// wholesale memo rebuilds (the fallback when the store's bounded label
	// log has slid past our generation).
	invalidations, flushes atomic.Int64

	// tel is the pipeline observing resolver latency for the current run.
	// The cache outlives individual runs (cmd/kexp shares one across
	// environments), so it is attached and detached per run via SetTelemetry
	// and read atomically on the lookup path.
	tel atomic.Pointer[telemetry.Pipeline]
}

// New returns a cache over kb resolving at the given threshold. Lookups at a
// different threshold bypass the memo (see MatchLabel).
func New(kb *rdf.Store, threshold float64) *Cache {
	c := &Cache{kb: kb, threshold: threshold, keysIx: similarity.NewIndex(), keysSeen: make(map[string]bool)}
	c.gen.Store(kb.LabelGen())
	for i := range c.shards {
		c.shards[i].m = make(map[string][]rdf.LabelMatch)
	}
	return c
}

// SetTelemetry attaches the pipeline observing resolver latency (nil
// detaches). Safe to call concurrently with lookups; typically the run
// harness attaches before the run and detaches after.
func (c *Cache) SetTelemetry(tel *telemetry.Pipeline) {
	c.tel.Store(tel)
}

// KB returns the underlying store.
func (c *Cache) KB() *rdf.Store { return c.kb }

// Threshold returns the threshold the memo is keyed for.
func (c *Cache) Threshold() float64 { return c.threshold }

// MatchLabel implements Source. Calls at the cache's threshold are memoized;
// calls at any other threshold fall through to the store uncached, so a
// Cache can stand in for its store anywhere without changing results.
func (c *Cache) MatchLabel(value string, threshold float64) []rdf.LabelMatch {
	if threshold != c.threshold {
		return c.kb.MatchLabel(value, threshold)
	}
	return c.Resolve(value)
}

// Resolve returns the KB resources matching value at the cache's threshold.
// The returned slice is shared with the memo; callers must not mutate it.
func (c *Cache) Resolve(value string) []rdf.LabelMatch {
	c.sync()
	key := similarity.Normalize(value)
	sh := &c.shards[fnvMask(key)]
	sh.mu.RLock()
	matches, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return matches
	}
	c.misses.Add(1)
	// The memo key IS the normalized value, so the miss path hands it to
	// MatchLabelNorm directly instead of having MatchLabel re-normalize it;
	// memoizing under the key collapses all spellings that normalize alike
	// ("S. Africa", "s africa") into one entry. Only misses are observed: a
	// hit is a map read, and timing it would drown the histogram in
	// nanosecond samples that say nothing about KB lookup cost.
	tel := c.tel.Load()
	mStart := tel.StartTimer()
	mSpan := tel.StartSpan("resolve-miss")
	matches = c.kb.MatchLabelNorm(key, c.threshold)
	mSpan.SetInt("matches", int64(len(matches)))
	mSpan.End()
	tel.ObserveSince(telemetry.HistResolverLookup, mStart)
	sh.mu.Lock()
	inserted := false
	if prior, ok := sh.m[key]; ok {
		matches = prior // another goroutine raced us; keep one canonical slice
	} else {
		sh.m[key] = matches
		inserted = true
	}
	sh.mu.Unlock()
	if inserted {
		c.indexKey(key)
	}
	return matches
}

// indexKey registers a memoised key in the reverse invalidation index,
// exactly once per distinct key over the cache's lifetime.
func (c *Cache) indexKey(key string) {
	c.keysMu.Lock()
	if !c.keysSeen[key] {
		c.keysSeen[key] = true
		c.keysIx.Add(key)
	}
	c.keysMu.Unlock()
}

// sync brings the memo up to date if labels were added to the store since it
// was built. Label additions happen only in single-writer windows (KB load,
// annotation enrichment, KB deltas), so readers observing a stale generation
// here are already synchronized with the writer by the store contract.
//
// Invalidation is per label: for every label indexed since our generation,
// evict exactly the memo entries whose answer could have changed — the entry
// keyed on the label's own normalisation (it now has an exact match) plus
// every cached value within the score threshold of the new label, found by a
// relaxed reverse trigram probe (a provable superset of the forward lookup's
// candidates, see similarity.Index.LookupNormalizedRelaxed). Everything else
// keeps its memoised answer: a label can only ever ADD matches for values it
// scores against, so untouched entries are still exact. Only when the
// store's bounded label log has slid past our generation does the cache fall
// back to the old wholesale flush.
func (c *Cache) sync() {
	labelGen := c.kb.LabelGen()
	if c.gen.Load() == labelGen {
		return
	}
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	cur := c.gen.Load()
	if cur == labelGen {
		return // another goroutine synced while we waited
	}
	labels, ok := c.kb.LabelsSince(cur)
	if !ok {
		c.flushes.Add(1)
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			sh.m = make(map[string][]rdf.LabelMatch)
			sh.mu.Unlock()
		}
		c.gen.Store(labelGen)
		return
	}
	for _, norm := range labels {
		c.invalidateLabel(norm)
	}
	c.gen.Store(labelGen)
}

// invalidateLabel evicts every memo entry the newly indexed label (already
// normalised) could affect.
func (c *Cache) invalidateLabel(norm string) {
	c.keysMu.Lock()
	cands := c.keysIx.LookupNormalizedRelaxed(norm, c.threshold)
	keys := make([]string, len(cands))
	for i, cand := range cands {
		keys[i] = c.keysIx.Value(cand.ID)
	}
	c.keysMu.Unlock()
	c.evict(norm)
	for _, key := range keys {
		if key != norm {
			c.evict(key)
		}
	}
}

// evict removes one memo entry if present.
func (c *Cache) evict(key string) {
	sh := &c.shards[fnvMask(key)]
	sh.mu.Lock()
	if _, ok := sh.m[key]; ok {
		delete(sh.m, key)
		c.invalidations.Add(1)
	}
	sh.mu.Unlock()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// SyncStats returns the cumulative per-label invalidation count (memo
// entries individually evicted) and wholesale flush count (the label-log
// truncation fallback) — the observability hooks the invalidation
// regression tests pin.
func (c *Cache) SyncStats() (invalidations, flushes int64) {
	return c.invalidations.Load(), c.flushes.Load()
}

// Len returns the number of memoized values.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// fnvMask hashes key (FNV-1a) and masks it down to a shard index.
func fnvMask(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (shardCount - 1)
}
