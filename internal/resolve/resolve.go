// Package resolve provides the shared entity-resolution layer: a
// concurrency-safe, memoized cache over fuzzy label lookup.
//
// Every KATARA stage — candidate generation (§4.1), annotation coverage
// (§6.1) and repair candidate enumeration (§6.2) — resolves table cell
// strings to KB resources. Real tables repeat values heavily (a Capital
// column mentions each city once per country row, a Country column far more
// often), so resolving each distinct value once and memoizing the answer
// removes most of the fuzzy-lookup work. The cache is built once per Cleaner
// and threaded through discovery, annotation and repair; all of them see the
// same memo, so a value resolved during discovery is free during annotation.
package resolve

import (
	"sync"
	"sync/atomic"

	"katara/internal/rdf"
	"katara/internal/similarity"
	"katara/internal/telemetry"
)

// Source is anything that can resolve a cell value to KB resources.
// *rdf.Store and *Cache both satisfy it; pipeline stages accept a Source so
// they run identically with or without caching.
type Source interface {
	MatchLabel(value string, threshold float64) []rdf.LabelMatch
}

// shardCount is a power of two so shard selection is a mask. 16 shards keeps
// lock contention negligible at the worker counts discovery uses.
const shardCount = 16

type shard struct {
	mu sync.RWMutex
	m  map[string][]rdf.LabelMatch
}

// Cache memoizes rdf.Store.MatchLabel keyed on the normalized cell value.
// It is safe for concurrent use under the store's single-writer contract:
// any number of goroutines may resolve concurrently while the store is
// quiescent; if the store gains labels (annotation enrichment does this
// between stages), the cache notices via Store.LabelGen and flushes itself.
type Cache struct {
	kb        *rdf.Store
	threshold float64

	gen     atomic.Uint64 // label generation the memo was built against
	flushMu sync.Mutex    // serialises flushes so racing readers flush once

	shards [shardCount]shard

	hits, misses atomic.Int64

	// tel is the pipeline observing resolver latency for the current run.
	// The cache outlives individual runs (cmd/kexp shares one across
	// environments), so it is attached and detached per run via SetTelemetry
	// and read atomically on the lookup path.
	tel atomic.Pointer[telemetry.Pipeline]
}

// New returns a cache over kb resolving at the given threshold. Lookups at a
// different threshold bypass the memo (see MatchLabel).
func New(kb *rdf.Store, threshold float64) *Cache {
	c := &Cache{kb: kb, threshold: threshold}
	c.gen.Store(kb.LabelGen())
	for i := range c.shards {
		c.shards[i].m = make(map[string][]rdf.LabelMatch)
	}
	return c
}

// SetTelemetry attaches the pipeline observing resolver latency (nil
// detaches). Safe to call concurrently with lookups; typically the run
// harness attaches before the run and detaches after.
func (c *Cache) SetTelemetry(tel *telemetry.Pipeline) {
	c.tel.Store(tel)
}

// KB returns the underlying store.
func (c *Cache) KB() *rdf.Store { return c.kb }

// Threshold returns the threshold the memo is keyed for.
func (c *Cache) Threshold() float64 { return c.threshold }

// MatchLabel implements Source. Calls at the cache's threshold are memoized;
// calls at any other threshold fall through to the store uncached, so a
// Cache can stand in for its store anywhere without changing results.
func (c *Cache) MatchLabel(value string, threshold float64) []rdf.LabelMatch {
	if threshold != c.threshold {
		return c.kb.MatchLabel(value, threshold)
	}
	return c.Resolve(value)
}

// Resolve returns the KB resources matching value at the cache's threshold.
// The returned slice is shared with the memo; callers must not mutate it.
func (c *Cache) Resolve(value string) []rdf.LabelMatch {
	c.sync()
	key := similarity.Normalize(value)
	sh := &c.shards[fnvMask(key)]
	sh.mu.RLock()
	matches, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return matches
	}
	c.misses.Add(1)
	// The memo key IS the normalized value, so the miss path hands it to
	// MatchLabelNorm directly instead of having MatchLabel re-normalize it;
	// memoizing under the key collapses all spellings that normalize alike
	// ("S. Africa", "s africa") into one entry. Only misses are observed: a
	// hit is a map read, and timing it would drown the histogram in
	// nanosecond samples that say nothing about KB lookup cost.
	tel := c.tel.Load()
	mStart := tel.StartTimer()
	mSpan := tel.StartSpan("resolve-miss")
	matches = c.kb.MatchLabelNorm(key, c.threshold)
	mSpan.SetInt("matches", int64(len(matches)))
	mSpan.End()
	tel.ObserveSince(telemetry.HistResolverLookup, mStart)
	sh.mu.Lock()
	if prior, ok := sh.m[key]; ok {
		matches = prior // another goroutine raced us; keep one canonical slice
	} else {
		sh.m[key] = matches
	}
	sh.mu.Unlock()
	return matches
}

// sync flushes the memo if labels were added to the store since it was
// built. Label additions happen only in single-writer windows (KB load,
// annotation enrichment), so readers observing a stale generation here are
// already synchronized with the writer by the store contract.
func (c *Cache) sync() {
	labelGen := c.kb.LabelGen()
	if c.gen.Load() == labelGen {
		return
	}
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	if c.gen.Load() == labelGen {
		return // another goroutine flushed while we waited
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.m = make(map[string][]rdf.LabelMatch)
		sh.mu.Unlock()
	}
	c.gen.Store(labelGen)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of memoized values.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// fnvMask hashes key (FNV-1a) and masks it down to a shard index.
func fnvMask(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h & (shardCount - 1)
}
