package resolve

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"katara/internal/rdf"
	"katara/internal/similarity"
)

func newKB(t *testing.T) *rdf.Store {
	t.Helper()
	kb := rdf.New()
	for _, e := range []struct{ iri, label string }{
		{"ex:Rome", "Rome"},
		{"ex:Roma", "Roma"},
		{"ex:Madrid", "Madrid"},
		{"ex:Pretoria", "Pretoria"},
		{"ex:SouthAfrica", "South Africa"},
		{"ex:SouthAfrica", "S. Africa"}, // second label, same resource
	} {
		kb.AddFact(rdf.IRI(e.iri), rdf.IRI(rdf.IRILabel), rdf.Lit(e.label))
	}
	return kb
}

func TestResolveMatchesDirectLookup(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	queries := []string{
		"Rome", "rome", "ROME", "Roma", "Pretorria", "S. Africa",
		"s africa", "Madrid", "nowhere", "", "  Rome  ",
	}
	for _, q := range queries {
		want := kb.MatchLabel(q, similarity.DefaultThreshold)
		got := c.Resolve(q)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Resolve(%q) = %v, direct MatchLabel = %v", q, got, want)
		}
		// Second call comes from the memo and must be identical.
		if again := c.Resolve(q); !reflect.DeepEqual(again, want) {
			t.Errorf("memoized Resolve(%q) = %v, want %v", q, again, want)
		}
	}
}

func TestHitMissAccounting(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	c.Resolve("Rome")
	c.Resolve("Madrid")
	if hits, misses := c.Stats(); hits != 0 || misses != 2 {
		t.Fatalf("after 2 distinct resolves: hits=%d misses=%d, want 0/2", hits, misses)
	}
	c.Resolve("Rome")
	c.Resolve("ROME")     // same normalized key: memo hit
	c.Resolve("  rome  ") // likewise
	if hits, misses := c.Stats(); hits != 3 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 3/2", hits, misses)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestInvalidationAfterLabelAdd(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	if got := c.Resolve("Lisbon"); len(got) != 0 {
		t.Fatalf("Lisbon should not resolve yet: %v", got)
	}
	kb.AddFact(rdf.IRI("ex:Lisbon"), rdf.IRI(rdf.IRILabel), rdf.Lit("Lisbon"))
	want := kb.MatchLabel("Lisbon", similarity.DefaultThreshold)
	if len(want) == 0 {
		t.Fatal("direct lookup should now find Lisbon")
	}
	if got := c.Resolve("Lisbon"); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-enrichment Resolve = %v, want %v", got, want)
	}
	// Non-label triples must NOT flush the memo.
	before := c.Len()
	kb.AddFact(rdf.IRI("ex:Lisbon"), rdf.IRI(rdf.IRIType), rdf.IRI("ex:City"))
	c.Resolve("Lisbon")
	if c.Len() != before {
		t.Fatalf("non-label Add flushed the memo: Len %d -> %d", before, c.Len())
	}
}

func TestThresholdBypass(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	// A different threshold must fall through to the store uncached and
	// return exactly the direct answer.
	for _, th := range []float64{0.3, 0.9, 1.0} {
		want := kb.MatchLabel("Roma", th)
		if got := c.MatchLabel("Roma", th); !reflect.DeepEqual(got, want) {
			t.Errorf("MatchLabel(Roma, %.1f) = %v, want %v", th, got, want)
		}
	}
	if _, misses := c.Stats(); misses != 0 {
		t.Fatalf("bypass lookups must not touch the memo, misses=%d", misses)
	}
	// At the cache's own threshold MatchLabel memoizes.
	c.MatchLabel("Roma", similarity.DefaultThreshold)
	if _, misses := c.Stats(); misses != 1 {
		t.Fatalf("cache-threshold MatchLabel should memoize, misses=%d", misses)
	}
}

func TestConcurrentResolve(t *testing.T) {
	kb := newKB(t)
	for i := 0; i < 64; i++ {
		kb.AddFact(rdf.IRI(fmt.Sprintf("ex:e%d", i)), rdf.IRI(rdf.IRILabel),
			rdf.Lit(fmt.Sprintf("entity %d", i)))
	}
	c := New(kb, similarity.DefaultThreshold)
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = fmt.Sprintf("entity %d", i%16) // heavy key overlap
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				q := queries[(w*50+r)%len(queries)]
				got := c.Resolve(q)
				want := kb.MatchLabel(q, similarity.DefaultThreshold)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent Resolve(%q) = %v, want %v", q, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if hits, misses := c.Stats(); hits+misses != 8*50 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*50)
	}
}

func TestSourceInterface(t *testing.T) {
	kb := newKB(t)
	var s Source = kb
	var c Source = New(kb, similarity.DefaultThreshold)
	want := s.MatchLabel("Rome", similarity.DefaultThreshold)
	if got := c.MatchLabel("Rome", similarity.DefaultThreshold); !reflect.DeepEqual(got, want) {
		t.Fatalf("Source implementations disagree: %v vs %v", got, want)
	}
}

func TestPerLabelInvalidationKeepsUnrelatedEntries(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	// Warm the memo with values unrelated to the label we are about to add.
	warm := []string{"Rome", "Madrid", "Pretoria", "South Africa"}
	for _, q := range warm {
		c.Resolve(q)
	}
	hits0, _ := c.Stats()
	// An unrelated enrichment label: shares no similarity with the warm set.
	kb.AddFact(rdf.IRI("ex:Qux"), rdf.IRI(rdf.IRILabel), rdf.Lit("zzyqwv"))
	for _, q := range warm {
		want := kb.MatchLabel(q, similarity.DefaultThreshold)
		if got := c.Resolve(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("post-enrichment Resolve(%q) = %v, want %v", q, got, want)
		}
	}
	// Regression: the old cache flushed the whole memo on any LabelGen bump,
	// so these four lookups were all misses. Per-label invalidation must
	// keep every unrelated entry memoised.
	hits1, _ := c.Stats()
	if hits1-hits0 != int64(len(warm)) {
		t.Fatalf("unrelated enrichment evicted memo entries: got %d hits across re-resolve, want %d",
			hits1-hits0, len(warm))
	}
	if inv, flushes := c.SyncStats(); inv != 0 || flushes != 0 {
		t.Fatalf("unrelated label should evict nothing: invalidations=%d flushes=%d", inv, flushes)
	}
}

func TestPerLabelInvalidationEvictsAffectedEntries(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	// A fuzzy miss that the upcoming label will turn into a hit.
	if got := c.Resolve("Lisbonne"); len(got) != 0 {
		t.Fatalf("Lisbonne should not resolve yet: %v", got)
	}
	// And an exact-key entry for the label's own normalisation.
	if got := c.Resolve("Lisbon"); len(got) != 0 {
		t.Fatalf("Lisbon should not resolve yet: %v", got)
	}
	c.Resolve("Madrid") // unrelated; must survive
	kb.AddFact(rdf.IRI("ex:Lisbon"), rdf.IRI(rdf.IRILabel), rdf.Lit("Lisbon"))
	for _, q := range []string{"Lisbon", "Lisbonne", "Madrid"} {
		want := kb.MatchLabel(q, similarity.DefaultThreshold)
		if got := c.Resolve(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("post-enrichment Resolve(%q) = %v, want %v", q, got, want)
		}
	}
	if got := c.Resolve("Lisbonne"); len(got) == 0 {
		t.Fatal("stale miss survived: Lisbonne must now fuzzily match Lisbon")
	}
	inv, flushes := c.SyncStats()
	if inv < 2 {
		t.Fatalf("expected the exact key and the fuzzy neighbour evicted, invalidations=%d", inv)
	}
	if flushes != 0 {
		t.Fatalf("per-label path must not flush wholesale, flushes=%d", flushes)
	}
}

// TestPerLabelInvalidationDifferential pins the correctness contract: after
// ANY sequence of label additions, every cached answer equals the direct
// store lookup.
func TestPerLabelInvalidationDifferential(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	queries := []string{
		"Rome", "Roma", "rome", "Pretorria", "S. Africa", "Madrid",
		"Lisbon", "Lisbonne", "Porto", "zzz", "", "New Dehli", "entity 3",
	}
	adds := []string{"Lisbon", "Porto", "New Delhi", "entity 3", "Rome II", "unrelated qwx"}
	for _, q := range queries {
		c.Resolve(q)
	}
	for i, label := range adds {
		kb.AddFact(rdf.IRI(fmt.Sprintf("ex:new%d", i)), rdf.IRI(rdf.IRILabel), rdf.Lit(label))
		for _, q := range queries {
			want := kb.MatchLabel(q, similarity.DefaultThreshold)
			if got := c.Resolve(q); !reflect.DeepEqual(got, want) {
				t.Fatalf("after adding %q: Resolve(%q) = %v, direct = %v", label, q, got, want)
			}
		}
	}
}

// TestLabelLogTruncationFallsBackToFlush: once the store's bounded label log
// slides past the cache's generation, sync must fall back to a wholesale
// flush — and still be correct.
func TestLabelLogTruncationFallsBackToFlush(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	c.Resolve("Rome")
	c.Resolve("Madrid")
	// Push far past the log bound in one quiescent window.
	for i := 0; i < 9000; i++ {
		kb.AddFact(rdf.IRI(fmt.Sprintf("ex:bulk%d", i)), rdf.IRI(rdf.IRILabel),
			rdf.Lit(fmt.Sprintf("bulk label %d", i)))
	}
	for _, q := range []string{"Rome", "Madrid", "bulk label 4242"} {
		want := kb.MatchLabel(q, similarity.DefaultThreshold)
		if got := c.Resolve(q); !reflect.DeepEqual(got, want) {
			t.Fatalf("post-truncation Resolve(%q) = %v, want %v", q, got, want)
		}
	}
	if _, flushes := c.SyncStats(); flushes != 1 {
		t.Fatalf("expected exactly one wholesale flush, got %d", flushes)
	}
}

// TestPerLabelInvalidationRace exercises concurrent resolves racing the
// per-label sync path (run under -race): one goroutine wins flushMu and
// walks the reverse index while the rest insert fresh entries.
func TestPerLabelInvalidationRace(t *testing.T) {
	kb := newKB(t)
	c := New(kb, similarity.DefaultThreshold)
	queries := make([]string, 40)
	for i := range queries {
		queries[i] = fmt.Sprintf("city %d", i)
	}
	for round := 0; round < 8; round++ {
		// Single-writer window: enrich the KB while resolvers are quiescent.
		kb.AddFact(rdf.IRI(fmt.Sprintf("ex:c%d", round)), rdf.IRI(rdf.IRILabel),
			rdf.Lit(fmt.Sprintf("city %d", round)))
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < 25; r++ {
					q := queries[(w*25+r)%len(queries)]
					got := c.Resolve(q)
					want := kb.MatchLabel(q, similarity.DefaultThreshold)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("round %d: Resolve(%q) = %v, want %v", round, q, got, want)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
}
