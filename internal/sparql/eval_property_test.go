package sparql

import (
	"fmt"
	"math/rand"
	"testing"

	"katara/internal/rdf"
)

// Property tests comparing the engine against brute-force evaluation over
// randomly generated stores.

func genStore(seed int64) (*rdf.Store, []rdf.ID, []rdf.ID) {
	rng := rand.New(rand.NewSource(seed))
	s := rdf.New()
	nEnt, nProp := 20+rng.Intn(20), 3+rng.Intn(3)
	ents := make([]rdf.ID, nEnt)
	for i := range ents {
		ents[i] = s.Res(fmt.Sprintf("e%d", i))
	}
	props := make([]rdf.ID, nProp)
	for i := range props {
		props[i] = s.Res(fmt.Sprintf("p%d", i))
	}
	nFacts := 30 + rng.Intn(60)
	for i := 0; i < nFacts; i++ {
		s.Add(ents[rng.Intn(nEnt)], props[rng.Intn(nProp)], ents[rng.Intn(nEnt)])
	}
	return s, ents, props
}

// bruteTriples collects all (s,o) pairs of a predicate by scanning.
func bruteTriples(s *rdf.Store, p rdf.ID) map[[2]rdf.ID]bool {
	out := map[[2]rdf.ID]bool{}
	for _, subj := range s.SubjectsWithPredicate(p) {
		for _, obj := range s.Objects(subj, p) {
			out[[2]rdf.ID{subj, obj}] = true
		}
	}
	return out
}

func TestSelectMatchesBruteForceProperty(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		s, _, props := genStore(seed)
		eng := NewEngine(s)
		for i, p := range props {
			res, err := eng.Run(fmt.Sprintf(`SELECT ?s ?o WHERE { ?s <p%d> ?o }`, i))
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTriples(s, p)
			if len(res.Rows) != len(want) {
				t.Fatalf("seed %d p%d: engine %d rows, brute force %d", seed, i, len(res.Rows), len(want))
			}
			for _, row := range res.Rows {
				if !want[[2]rdf.ID{row["s"], row["o"]}] {
					t.Fatalf("seed %d: spurious row %v", seed, row)
				}
			}
		}
	}
}

func TestJoinMatchesBruteForceProperty(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		s, _, props := genStore(seed)
		if len(props) < 2 {
			continue
		}
		eng := NewEngine(s)
		res, err := eng.Run(`SELECT ?a ?b ?c WHERE { ?a <p0> ?b . ?b <p1> ?c }`)
		if err != nil {
			t.Fatal(err)
		}
		p0 := bruteTriples(s, props[0])
		p1 := bruteTriples(s, props[1])
		want := map[[3]rdf.ID]bool{}
		for ab := range p0 {
			for bc := range p1 {
				if ab[1] == bc[0] {
					want[[3]rdf.ID{ab[0], ab[1], bc[1]}] = true
				}
			}
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("seed %d: join %d rows, brute force %d", seed, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			if !want[[3]rdf.ID{row["a"], row["b"], row["c"]}] {
				t.Fatalf("seed %d: spurious join row %v", seed, row)
			}
		}
	}
}

func TestPathEqualsExplicitJoinProperty(t *testing.T) {
	// ?a <p0>/<p1> ?c must equal the projection of the explicit join.
	for seed := int64(40); seed < 50; seed++ {
		s, _, _ := genStore(seed)
		eng := NewEngine(s)
		path, err := eng.Run(`SELECT DISTINCT ?a ?c WHERE { ?a <p0>/<p1> ?c }`)
		if err != nil {
			t.Fatal(err)
		}
		join, err := eng.Run(`SELECT DISTINCT ?a ?c WHERE { ?a <p0> ?b . ?b <p1> ?c }`)
		if err != nil {
			t.Fatal(err)
		}
		if len(path.Rows) != len(join.Rows) {
			t.Fatalf("seed %d: path %d rows vs join %d rows", seed, len(path.Rows), len(join.Rows))
		}
		seen := map[[2]rdf.ID]bool{}
		for _, row := range join.Rows {
			seen[[2]rdf.ID{row["a"], row["c"]}] = true
		}
		for _, row := range path.Rows {
			if !seen[[2]rdf.ID{row["a"], row["c"]}] {
				t.Fatalf("seed %d: path row %v missing from join", seed, row)
			}
		}
	}
}

func TestStarClosureMatchesBFSProperty(t *testing.T) {
	for seed := int64(60); seed < 70; seed++ {
		s, ents, props := genStore(seed)
		eng := NewEngine(s)
		p := props[0]
		start := ents[0]
		// Engine: e0 p0* ?x.
		res, err := eng.Run(`SELECT DISTINCT ?x WHERE { e0 <p0>* ?x }`)
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force BFS.
		want := map[rdf.ID]bool{start: true}
		queue := []rdf.ID{start}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, o := range s.Objects(n, p) {
				if !want[o] {
					want[o] = true
					queue = append(queue, o)
				}
			}
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("seed %d: star closure %d rows, BFS %d", seed, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			if !want[row["x"]] {
				t.Fatalf("seed %d: spurious closure node %v", seed, row["x"])
			}
		}
	}
}

func TestAskConsistentWithSelectProperty(t *testing.T) {
	for seed := int64(80); seed < 90; seed++ {
		s, _, _ := genStore(seed)
		eng := NewEngine(s)
		sel, err := eng.Run(`SELECT ?a ?c WHERE { ?a <p0>/<p1> ?c }`)
		if err != nil {
			t.Fatal(err)
		}
		ask, err := eng.Run(`ASK { ?a <p0>/<p1> ?c }`)
		if err != nil {
			t.Fatal(err)
		}
		if ask.Bool != (len(sel.Rows) > 0) {
			t.Fatalf("seed %d: ASK %v but SELECT has %d rows", seed, ask.Bool, len(sel.Rows))
		}
	}
}

func TestForwardBackwardSymmetryProperty(t *testing.T) {
	// Binding the subject vs binding the object must agree.
	for seed := int64(100); seed < 108; seed++ {
		s, ents, props := genStore(seed)
		eng := NewEngine(s)
		p := props[0]
		for _, e := range ents[:5] {
			name := s.Term(e).Value
			fwd, err := eng.Run(fmt.Sprintf(`SELECT ?o WHERE { %s <p0> ?o }`, name))
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range fwd.Rows {
				oName := s.Term(row["o"]).Value
				bwd, err := eng.Run(fmt.Sprintf(`SELECT ?s WHERE { ?s <p0> %s }`, oName))
				if err != nil {
					t.Fatal(err)
				}
				found := false
				for _, br := range bwd.Rows {
					if br["s"] == e {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: %s -p0-> %s found forward but not backward", seed, name, oName)
				}
			}
			_ = p
		}
	}
}
