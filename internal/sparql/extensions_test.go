package sparql

import (
	"testing"
)

func TestOptional(t *testing.T) {
	s := fixture()
	// Every person, with their height when known (only Rossi has one).
	res := run(t, s, `SELECT ?x ?h WHERE {
		?x a y:soccerPlayer .
		OPTIONAL { ?x y:height ?h } }`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	withH, withoutH := 0, 0
	for _, row := range res.Rows {
		if _, ok := row["h"]; ok {
			withH++
			if s.Term(row["h"]).Value != "1.78" {
				t.Fatalf("wrong height %v", s.Term(row["h"]))
			}
		} else {
			withoutH++
		}
	}
	if withH != 1 || withoutH != 1 {
		t.Fatalf("optional split %d/%d, want 1/1", withH, withoutH)
	}
}

func TestOptionalNeverShrinks(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?x WHERE {
		?x a y:country .
		OPTIONAL { ?x y:noSuchProp ?y } }`)
	if len(res.Rows) != 2 {
		t.Fatalf("OPTIONAL dropped solutions: %d rows", len(res.Rows))
	}
}

func TestUnion(t *testing.T) {
	s := fixture()
	// Countries and capitals in one result.
	res := run(t, s, `SELECT DISTINCT ?x WHERE {
		{ ?x a y:country } UNION { ?x a y:capital } }`)
	if len(res.Rows) != 4 { // Italy, Spain, Rome, Madrid
		t.Fatalf("union rows = %d, want 4", len(res.Rows))
	}
}

func TestUnionThreeBranches(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT DISTINCT ?x WHERE {
		{ ?x a y:country } UNION { ?x a y:capital } UNION { ?x a y:soccerPlayer } }`)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
}

func TestUnionSharesOuterBindings(t *testing.T) {
	s := fixture()
	// The union branches are evaluated under the outer binding of ?c.
	res := run(t, s, `SELECT ?c ?x WHERE {
		?c a y:country .
		{ ?x y:nationality ?c } UNION { ?c y:hasCapital ?x } }`)
	// Italy: Rossi, Pirlo (branch 1) + Rome (branch 2); Spain: Madrid.
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
}

func TestNestedPlainGroup(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?x WHERE { { ?x a y:country } }`)
	if len(res.Rows) != 2 {
		t.Fatalf("nested group rows = %d", len(res.Rows))
	}
}

func TestCountStar(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT (COUNT(*) AS ?n) WHERE { ?x a y:country }`)
	if res.Count != 2 {
		t.Fatalf("count = %d, want 2", res.Count)
	}
	if len(res.Vars) != 1 || res.Vars[0] != "n" {
		t.Fatalf("vars = %v", res.Vars)
	}
}

func TestCountVariable(t *testing.T) {
	s := fixture()
	// Count players with a height: only Rossi.
	res := run(t, s, `SELECT (COUNT(?h) AS ?n) WHERE {
		?x a y:soccerPlayer .
		OPTIONAL { ?x y:height ?h } }`)
	if res.Count != 1 {
		t.Fatalf("COUNT(?h) = %d, want 1", res.Count)
	}
	// COUNT(*) over the same pattern counts both solutions.
	res2 := run(t, s, `SELECT (COUNT(*) AS ?n) WHERE {
		?x a y:soccerPlayer .
		OPTIONAL { ?x y:height ?h } }`)
	if res2.Count != 2 {
		t.Fatalf("COUNT(*) = %d, want 2", res2.Count)
	}
}

func TestCountDistinct(t *testing.T) {
	s := fixture()
	// Two players share the nationality Italy: DISTINCT collapses it.
	res := run(t, s, `SELECT DISTINCT (COUNT(?c) AS ?n) WHERE { ?x y:nationality ?c }`)
	if res.Count != 1 {
		t.Fatalf("COUNT(DISTINCT ?c) = %d, want 1", res.Count)
	}
}

func TestOrderBy(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?x WHERE { ?x a y:country } ORDER BY ?x`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	a := s.Term(res.Rows[0]["x"]).Value
	b := s.Term(res.Rows[1]["x"]).Value
	if a > b {
		t.Fatalf("not ascending: %s, %s", a, b)
	}
	res2 := run(t, s, `SELECT ?x WHERE { ?x a y:country } ORDER BY DESC(?x)`)
	if s.Term(res2.Rows[0]["x"]).Value != b {
		t.Fatal("DESC did not reverse the order")
	}
}

func TestOrderByWithLimit(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?x WHERE { ?x rdf:type ?t } ORDER BY ?x LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestExtensionParseErrors(t *testing.T) {
	bad := []string{
		`SELECT (COUNT(*) ?n) WHERE { ?x a y:c }`,   // missing AS
		`SELECT (SUM(*) AS ?n) WHERE { ?x a y:c }`,  // unsupported aggregate
		`SELECT ?x WHERE { ?x a y:c } ORDER ?x`,     // missing BY
		`SELECT ?x WHERE { OPTIONAL ?x a y:c }`,     // OPTIONAL needs a group
		`SELECT ?x WHERE { { ?x a y:c } UNION ?x }`, // UNION needs a group
		`SELECT (COUNT(*) AS ?n WHERE { ?x a y:c }`, // unbalanced parens
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestExtensionStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		`SELECT ?x ?h WHERE { ?x a y:p . OPTIONAL { ?x y:h ?h } } ORDER BY DESC(?x) LIMIT 3`,
		`SELECT (COUNT(?h) AS ?n) WHERE { { ?x a y:a } UNION { ?x a y:b } }`,
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if _, err := Parse(q.String()); err != nil {
			t.Fatalf("re-parse of %q: %v", q.String(), err)
		}
	}
}

func TestCountUsedForKBStatistics(t *testing.T) {
	// The §4.1 statistics are expressible as aggregates: number of entities
	// of a type.
	s := fixture()
	res := run(t, s, `SELECT (COUNT(?x) AS ?n) WHERE { ?x rdf:type/rdfs:subClassOf* y:location }`)
	if res.Count != 4 { // Italy, Spain, Rome, Madrid
		t.Fatalf("entities under location = %d, want 4", res.Count)
	}
}
