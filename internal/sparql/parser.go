package sparql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles a query string into its AST.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return q, nil
}

// MustParse is Parse for statically known queries; it panics on error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sparql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, got %q", what, p.peek().text)
	}
	return p.next(), nil
}

func (p *parser) keyword(word string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == word {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseQuery() (*Query, error) {
	// Skip PREFIX declarations (prefixed names are opaque to the engine).
	for p.keyword("PREFIX") {
		if _, err := p.expect(tokIRI, "prefix name"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokIRI, "prefix IRI"); err != nil {
			return nil, err
		}
	}
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected SELECT or ASK, got %q", t.text)
	}
	q := &Query{}
	switch t.text {
	case "SELECT":
		p.next()
		if p.keyword("DISTINCT") {
			q.Distinct = true
		}
		if err := p.parseProjection(q); err != nil {
			return nil, err
		}
		p.keyword("WHERE")
	case "ASK":
		p.next()
		q.Kind = Ask
	default:
		return nil, p.errf("expected SELECT or ASK, got %q", t.text)
	}
	where, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	q.Where = where
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		desc := false
		switch {
		case p.keyword("DESC"):
			desc = true
		case p.keyword("ASC"):
		}
		var v token
		if p.peek().kind == tokLParen {
			p.next()
			v, err = p.expect(tokVar, "ORDER BY variable")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
		} else {
			v, err = p.expect(tokVar, "ORDER BY variable")
			if err != nil {
				return nil, err
			}
		}
		q.OrderBy = v.text
		q.OrderDesc = desc
	}
	if p.keyword("LIMIT") {
		n, err := p.expect(tokInt, "LIMIT count")
		if err != nil {
			return nil, err
		}
		lim, err := strconv.Atoi(n.text)
		if err != nil || lim < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		q.Limit = lim
	}
	return q, nil
}

// parseProjection handles `*`, a variable list, or (COUNT(...) AS ?v).
func (p *parser) parseProjection(q *Query) error {
	if p.peek().kind == tokStar {
		p.next()
		return nil
	}
	if p.peek().kind == tokLParen {
		p.next()
		if !p.keyword("COUNT") {
			return p.errf("expected COUNT in aggregate projection")
		}
		if _, err := p.expect(tokLParen, "'(' after COUNT"); err != nil {
			return err
		}
		switch p.peek().kind {
		case tokStar:
			p.next()
		case tokVar:
			q.CountOf = p.next().text
		default:
			return p.errf("expected '*' or variable in COUNT")
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		if !p.keyword("AS") {
			return p.errf("expected AS in aggregate projection")
		}
		v, err := p.expect(tokVar, "aggregate alias variable")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return err
		}
		q.CountVar = v.text
		return nil
	}
	for p.peek().kind == tokVar {
		q.Vars = append(q.Vars, p.next().text)
	}
	if len(q.Vars) == 0 {
		return p.errf("SELECT needs at least one variable, an aggregate, or '*'")
	}
	return nil
}

// parseGroup parses a brace-delimited group graph pattern.
func (p *parser) parseGroup() ([]Node, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var nodes []Node
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.next()
			return nodes, nil
		case t.kind == tokDot:
			p.next() // separator / trailing dot
		case t.kind == tokKeyword && t.text == "FILTER":
			p.next()
			f, err := p.parseFilter()
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, FilterNode{Filter: f})
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.next()
			inner, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, OptionalNode{Where: inner})
		case t.kind == tokLBrace:
			// A nested group: either a UNION chain or a plain subgroup.
			first, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			if p.peek().kind == tokKeyword && p.peek().text == "UNION" {
				branches := [][]Node{first}
				for p.keyword("UNION") {
					b, err := p.parseGroup()
					if err != nil {
						return nil, err
					}
					branches = append(branches, b)
				}
				nodes = append(nodes, UnionNode{Branches: branches})
			} else {
				nodes = append(nodes, first...)
			}
		case t.kind == tokEOF:
			return nil, p.errf("unterminated group")
		default:
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, TripleNode{Pattern: pat})
		}
	}
}

func (p *parser) parseNode() (NodeSpec, error) {
	t := p.next()
	switch t.kind {
	case tokVar:
		return NodeSpec{Kind: VarNode, Value: t.text}, nil
	case tokIRI:
		return NodeSpec{Kind: IRINode, Value: t.text}, nil
	case tokLiteral:
		return NodeSpec{Kind: LitNode, Value: t.text}, nil
	case tokInt:
		return NodeSpec{Kind: LitNode, Value: t.text}, nil
	default:
		return NodeSpec{}, fmt.Errorf("sparql: at offset %d: expected term, got %q", t.pos, t.text)
	}
}

func (p *parser) parsePattern() (Pattern, error) {
	subj, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	var path []PathElt
	for {
		elt, err := p.parsePathElt()
		if err != nil {
			return Pattern{}, err
		}
		path = append(path, elt)
		if p.peek().kind == tokSlash {
			p.next()
			continue
		}
		break
	}
	obj, err := p.parseNode()
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{Subject: subj, Path: path, Object: obj}, nil
}

func (p *parser) parsePathElt() (PathElt, error) {
	t := p.next()
	var elt PathElt
	switch t.kind {
	case tokIRI:
		elt.IRI = t.text
	case tokVar:
		elt.Var = t.text
	default:
		return elt, fmt.Errorf("sparql: at offset %d: expected path element, got %q", t.pos, t.text)
	}
	if p.peek().kind == tokStar {
		p.next()
		if elt.Var != "" {
			return elt, fmt.Errorf("sparql: '*' on a variable predicate is not supported")
		}
		elt.Star = true
	}
	return elt, nil
}

func (p *parser) parseFilter() (Filter, error) {
	if _, err := p.expect(tokLParen, "'(' after FILTER"); err != nil {
		return Filter{}, err
	}
	left, err := p.parseNode()
	if err != nil {
		return Filter{}, err
	}
	op := p.next()
	if op.kind != tokEq && op.kind != tokNeq {
		return Filter{}, fmt.Errorf("sparql: at offset %d: expected '=' or '!=', got %q", op.pos, op.text)
	}
	right, err := p.parseNode()
	if err != nil {
		return Filter{}, err
	}
	if _, err := p.expect(tokRParen, "')'"); err != nil {
		return Filter{}, err
	}
	return Filter{Left: left, Right: right, Negated: op.kind == tokNeq}, nil
}

// String renders the query back to (normalised) SPARQL text, for debugging.
func (q *Query) String() string {
	var b strings.Builder
	if q.Kind == Ask {
		b.WriteString("ASK")
	} else {
		b.WriteString("SELECT")
		if q.Distinct {
			b.WriteString(" DISTINCT")
		}
		switch {
		case q.CountVar != "":
			of := "*"
			if q.CountOf != "" {
				of = "?" + q.CountOf
			}
			fmt.Fprintf(&b, " (COUNT(%s) AS ?%s)", of, q.CountVar)
		case len(q.Vars) == 0:
			b.WriteString(" *")
		default:
			for _, v := range q.Vars {
				b.WriteString(" ?" + v)
			}
		}
		b.WriteString(" WHERE")
	}
	b.WriteString(" ")
	writeNodes(&b, q.Where)
	if q.OrderBy != "" {
		b.WriteString(" ORDER BY ")
		if q.OrderDesc {
			fmt.Fprintf(&b, "DESC(?%s)", q.OrderBy)
		} else {
			b.WriteString("?" + q.OrderBy)
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

func writeNodes(b *strings.Builder, nodes []Node) {
	b.WriteString("{ ")
	for _, n := range nodes {
		switch n := n.(type) {
		case TripleNode:
			writePattern(b, n.Pattern)
		case FilterNode:
			op := "="
			if n.Filter.Negated {
				op = "!="
			}
			fmt.Fprintf(b, "FILTER(%s %s %s) ", n.Filter.Left, op, n.Filter.Right)
		case OptionalNode:
			b.WriteString("OPTIONAL ")
			writeNodes(b, n.Where)
			b.WriteString(" ")
		case UnionNode:
			for i, br := range n.Branches {
				if i > 0 {
					b.WriteString("UNION ")
				}
				writeNodes(b, br)
				b.WriteString(" ")
			}
		}
	}
	b.WriteString("}")
}

func writePattern(b *strings.Builder, pat Pattern) {
	b.WriteString(pat.Subject.String() + " ")
	for i, e := range pat.Path {
		if i > 0 {
			b.WriteString("/")
		}
		if e.Var != "" {
			b.WriteString("?" + e.Var)
		} else {
			b.WriteString("<" + e.IRI + ">")
		}
		if e.Star {
			b.WriteString("*")
		}
	}
	b.WriteString(" " + pat.Object.String() + " . ")
}
