package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar     // ?name
	tokIRI     // <...> or prefixed name
	tokLiteral // "..."
	tokInt
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokDot
	tokSlash
	tokStar
	tokEq
	tokNeq
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "WHERE": true, "DISTINCT": true,
	"FILTER": true, "LIMIT": true, "PREFIX": true,
	"OPTIONAL": true, "UNION": true, "ORDER": true, "BY": true,
	"DESC": true, "ASC": true, "COUNT": true, "AS": true,
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '{':
			l.emit(tokLBrace, "{")
		case c == '}':
			l.emit(tokRBrace, "}")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '/':
			l.emit(tokSlash, "/")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '=':
			l.emit(tokEq, "=")
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.toks = append(l.toks, token{tokNeq, "!=", l.pos})
				l.pos += 2
			} else {
				return nil, fmt.Errorf("sparql: unexpected '!' at %d", l.pos)
			}
		case c == '?' || c == '$':
			start := l.pos + 1
			end := start
			for end < len(l.src) && isNameChar(rune(l.src[end])) {
				end++
			}
			if end == start {
				return nil, fmt.Errorf("sparql: empty variable name at %d", l.pos)
			}
			l.toks = append(l.toks, token{tokVar, l.src[start:end], l.pos})
			l.pos = end
		case c == '<':
			end := strings.IndexByte(l.src[l.pos:], '>')
			if end < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI at %d", l.pos)
			}
			l.toks = append(l.toks, token{tokIRI, l.src[l.pos+1 : l.pos+end], l.pos})
			l.pos += end + 1
		case c == '"':
			i := l.pos + 1
			var sb strings.Builder
			for i < len(l.src) && l.src[i] != '"' {
				if l.src[i] == '\\' && i+1 < len(l.src) {
					i++
					switch l.src[i] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(l.src[i])
					}
				} else {
					sb.WriteByte(l.src[i])
				}
				i++
			}
			if i >= len(l.src) {
				return nil, fmt.Errorf("sparql: unterminated literal at %d", l.pos)
			}
			l.toks = append(l.toks, token{tokLiteral, sb.String(), l.pos})
			l.pos = i + 1
		case c >= '0' && c <= '9':
			end := l.pos
			for end < len(l.src) && l.src[end] >= '0' && l.src[end] <= '9' {
				end++
			}
			l.toks = append(l.toks, token{tokInt, l.src[l.pos:end], l.pos})
			l.pos = end
		default:
			if !isNameStart(rune(c)) {
				return nil, fmt.Errorf("sparql: unexpected character %q at %d", c, l.pos)
			}
			end := l.pos
			for end < len(l.src) && (isNameChar(rune(l.src[end])) || l.src[end] == ':') {
				end++
			}
			word := l.src[l.pos:end]
			upper := strings.ToUpper(word)
			switch {
			case keywords[upper]:
				l.toks = append(l.toks, token{tokKeyword, upper, l.pos})
			case word == "a":
				// rdf:type abbreviation
				l.toks = append(l.toks, token{tokIRI, "rdf:type", l.pos})
			default:
				// prefixed name: treated as an opaque IRI
				l.toks = append(l.toks, token{tokIRI, word, l.pos})
			}
			l.pos = end
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.toks = append(l.toks, token{k, text, l.pos})
	l.pos++
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
