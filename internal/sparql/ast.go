// Package sparql implements the query substrate KATARA runs against the
// knowledge base: a from-scratch engine for the SPARQL subset the paper uses
// (§4.1 Q_types, Q¹_rels, Q²_rels and the per-tuple coverage checks of §6.1).
//
// Supported grammar:
//
//	Query      := Prologue? (SelectQuery | AskQuery)
//	SelectQuery:= 'SELECT' 'DISTINCT'? ( Var+ | CountExpr | '*' ) 'WHERE'?
//	              GroupGraph ('ORDER' 'BY' ('DESC'? '(' Var ')' | Var))? ('LIMIT' INT)?
//	CountExpr  := '(' 'COUNT' '(' ('*' | Var) ')' 'AS' Var ')'
//	AskQuery   := 'ASK' GroupGraph
//	GroupGraph := '{' Block* '}'
//	Block      := Triple | 'FILTER' Constraint
//	            | 'OPTIONAL' GroupGraph
//	            | GroupGraph ('UNION' GroupGraph)+
//	Triple     := VarOrTerm Path VarOrTerm
//	Path       := PathElt ( '/' PathElt )*
//	PathElt    := (IRI | 'a' | Var) '*'?
//	Constraint := '(' Expr (('=' | '!=') Expr) ')'
//
// Terms are `?var`, `<iri>`, prefixed names such as rdfs:label (treated as
// opaque IRIs), and double-quoted literals. `a` abbreviates rdf:type.
package sparql

import "fmt"

// QueryKind discriminates SELECT from ASK.
type QueryKind int

const (
	// Select queries return variable bindings.
	Select QueryKind = iota
	// Ask queries return a boolean.
	Ask
)

// Query is a parsed query.
type Query struct {
	Kind     QueryKind
	Distinct bool
	Vars     []string // projected variables; empty means '*' (all bound)
	Where    []Node   // graph pattern nodes, evaluated in order
	Limit    int      // 0 means no limit
	// CountVar, when set, makes the query an aggregate:
	// SELECT (COUNT(*) AS ?CountVar). CountOf restricts the count to
	// solutions where that variable is bound (COUNT(?v)).
	CountVar string
	CountOf  string
	// OrderBy sorts solutions by this variable; OrderDesc reverses.
	OrderBy   string
	OrderDesc bool
}

// Node is one element of a group graph pattern.
type Node interface{ isNode() }

// TripleNode wraps a triple pattern.
type TripleNode struct{ Pattern Pattern }

// FilterNode wraps a FILTER constraint.
type FilterNode struct{ Filter Filter }

// OptionalNode wraps an OPTIONAL group: solutions are extended where the
// group matches and kept unchanged where it does not.
type OptionalNode struct{ Where []Node }

// UnionNode is a disjunction of groups.
type UnionNode struct{ Branches [][]Node }

func (TripleNode) isNode()   {}
func (FilterNode) isNode()   {}
func (OptionalNode) isNode() {}
func (UnionNode) isNode()    {}

// Pattern is one triple pattern with a property path in predicate position.
type Pattern struct {
	Subject NodeSpec
	Path    []PathElt
	Object  NodeSpec
}

// NodeKind discriminates the kinds of node specifications.
type NodeKind int

const (
	// VarNode is a variable such as ?x.
	VarNode NodeKind = iota
	// IRINode is a resource reference.
	IRINode
	// LitNode is a literal.
	LitNode
)

// NodeSpec is a subject or object position: variable, IRI or literal.
type NodeSpec struct {
	Kind  NodeKind
	Value string // variable name (without '?'), IRI, or literal text
}

// PathElt is one step of a property path: a fixed IRI or a variable
// predicate, optionally with zero-or-more repetition ('*').
type PathElt struct {
	IRI  string // set when Var == ""
	Var  string // variable predicate name
	Star bool   // zero-or-more repetition (only valid for IRI elements)
}

// Filter is an (in)equality constraint between two node specs.
type Filter struct {
	Left, Right NodeSpec
	Negated     bool // true for !=
}

func (n NodeSpec) String() string {
	switch n.Kind {
	case VarNode:
		return "?" + n.Value
	case LitNode:
		return fmt.Sprintf("%q", n.Value)
	default:
		return "<" + n.Value + ">"
	}
}
