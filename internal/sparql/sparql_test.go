package sparql

import (
	"testing"

	"katara/internal/rdf"
)

// fixture builds the §1 running-example KB fragment.
func fixture() *rdf.Store {
	s := rdf.New()
	add := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { s.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }

	add("y:capital", rdf.IRISubClassOf, "y:city")
	add("y:city", rdf.IRISubClassOf, "y:location")
	add("y:country", rdf.IRISubClassOf, "y:location")
	add("y:soccerPlayer", rdf.IRISubClassOf, "y:person")
	add("y:hasCapital", rdf.IRISubPropertyOf, "y:locatedIn")

	for _, e := range []struct{ iri, typ, label string }{
		{"y:Rossi", "y:soccerPlayer", "Rossi"},
		{"y:Pirlo", "y:soccerPlayer", "Pirlo"},
		{"y:Italy", "y:country", "Italy"},
		{"y:Spain", "y:country", "Spain"},
		{"y:Rome", "y:capital", "Rome"},
		{"y:Madrid", "y:capital", "Madrid"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	add("y:Italy", "y:hasCapital", "y:Rome")
	add("y:Spain", "y:hasCapital", "y:Madrid")
	add("y:Rossi", "y:nationality", "y:Italy")
	add("y:Pirlo", "y:nationality", "y:Italy")
	lit("y:Rossi", "y:height", "1.78")
	return s
}

func run(t *testing.T, s *rdf.Store, src string) *Result {
	t.Helper()
	res, err := NewEngine(s).Run(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return res
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT WHERE { ?x ?p ?y }",
		"SELECT ?x { ?x ?p ?y ",
		"SELECT ?x { ?x ?p* ?y }", // star on variable predicate
		"FOO ?x { ?x ?p ?y }",
		"SELECT ?x { ?x <p> ?y } LIMIT x",
		"ASK { ?x <p> }",
		"SELECT ?x { ?x <p ?y }",
		"SELECT ?x { ?x <p> ?y } extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `SELECT DISTINCT ?c WHERE { ?x rdfs:label "Rome" . ?x rdf:type/rdfs:subClassOf* ?c } LIMIT 5`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || q.Limit != 5 || len(q.Where) != 2 || len(q.Vars) != 1 {
		t.Fatalf("parsed %+v", q)
	}
	// Re-parse the printed form; must be stable.
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
}

func TestQTypes(t *testing.T) {
	// The paper's Q_types: types and supertypes of entities labelled t[Ai].
	s := fixture()
	res := run(t, s, `SELECT DISTINCT ?c WHERE {
		?x rdfs:label "Rome" .
		?x rdf:type/rdfs:subClassOf* ?c }`)
	want := map[string]bool{"y:capital": true, "y:city": true, "y:location": true}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d types, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		iri := s.Term(row["c"]).Value
		if !want[iri] {
			t.Errorf("unexpected type %s", iri)
		}
	}
}

func TestQRels1(t *testing.T) {
	// Q¹_rels: relationship between two resource-valued cells, with
	// sub-property generalisation.
	s := fixture()
	res := run(t, s, `SELECT DISTINCT ?P WHERE {
		?xi rdfs:label "Italy" .
		?xj rdfs:label "Rome" .
		?xi ?P/rdfs:subPropertyOf* ?xj }`)
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[s.Term(row["P"]).Value] = true
	}
	if !got["y:hasCapital"] {
		t.Errorf("expected hasCapital in %v", got)
	}
	// ?P binds the *first* hop, so only the asserted predicate appears; the
	// closure is on the tail of the path. hasCapital is asserted.
	if len(got) != 1 {
		t.Errorf("got %v, want exactly hasCapital", got)
	}
}

func TestQRels2(t *testing.T) {
	// Q²_rels: relationship to a literal cell.
	s := fixture()
	res := run(t, s, `SELECT ?P WHERE {
		?xi rdfs:label "Rossi" .
		?xi ?P/rdfs:subPropertyOf* "1.78" }`)
	if len(res.Rows) != 1 || s.Term(res.Rows[0]["P"]).Value != "y:height" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAsk(t *testing.T) {
	s := fixture()
	if !run(t, s, `ASK { y:Italy y:hasCapital y:Rome }`).Bool {
		t.Error("Italy hasCapital Rome should hold")
	}
	if run(t, s, `ASK { y:Italy y:hasCapital y:Madrid }`).Bool {
		t.Error("Italy hasCapital Madrid should not hold")
	}
	// Sub-property path: hasCapital ⊑ locatedIn.
	if !run(t, s, `ASK { y:Italy ?p/rdfs:subPropertyOf* y:Rome . FILTER(?p = y:hasCapital) }`).Bool {
		t.Error("filtered ASK failed")
	}
}

func TestAKeyword(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?x WHERE { ?x a y:country }`)
	if len(res.Rows) != 2 {
		t.Fatalf("a-keyword: got %d countries, want 2", len(res.Rows))
	}
}

func TestStarIncludesZeroHops(t *testing.T) {
	s := fixture()
	// subClassOf* from capital includes capital itself.
	res := run(t, s, `SELECT ?c WHERE { y:capital rdfs:subClassOf* ?c }`)
	if len(res.Rows) != 3 { // capital, city, location
		t.Fatalf("got %d rows, want 3: %v", len(res.Rows), res.Rows)
	}
}

func TestBackwardEvaluation(t *testing.T) {
	s := fixture()
	// Object constant, subject variable: evaluated right-to-left.
	res := run(t, s, `SELECT ?x WHERE { ?x y:nationality y:Italy }`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	// Backward through a path.
	res = run(t, s, `SELECT ?x WHERE { ?x y:nationality/y:hasCapital y:Rome }`)
	if len(res.Rows) != 2 {
		t.Fatalf("path backward: got %d rows, want 2", len(res.Rows))
	}
}

func TestBothEndsUnbound(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?s ?o WHERE { ?s y:hasCapital ?o }`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestVariablePredicateBothEndsUnbound(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT DISTINCT ?p WHERE { ?s ?p ?o }`)
	// type, label, subClassOf, subPropertyOf, hasCapital, nationality, height
	if len(res.Rows) != 7 {
		t.Fatalf("got %d predicates, want 7", len(res.Rows))
	}
}

func TestJoinAcrossPatterns(t *testing.T) {
	s := fixture()
	// Players whose nationality's capital is Rome.
	res := run(t, s, `SELECT ?player WHERE {
		?player y:nationality ?c .
		?c y:hasCapital y:Rome }`)
	if len(res.Rows) != 2 {
		t.Fatalf("join: got %d rows, want 2", len(res.Rows))
	}
}

func TestFilterNotEqual(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?a ?b WHERE {
		?a rdf:type y:country .
		?b rdf:type y:country .
		FILTER(?a != ?b) }`)
	if len(res.Rows) != 2 { // (Italy,Spain) and (Spain,Italy)
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestLimitAndDistinct(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?x WHERE { ?x rdf:type ?t } LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("limit: got %d rows", len(res.Rows))
	}
	// Without DISTINCT, Rossi appears once per type; subClassOf* fan-out
	// would duplicate under projection.
	all := run(t, s, `SELECT ?c WHERE { y:Rossi rdf:type/rdfs:subClassOf* ?c }`)
	dis := run(t, s, `SELECT DISTINCT ?c WHERE { y:Rossi rdf:type/rdfs:subClassOf* ?c }`)
	if len(dis.Rows) != 2 { // soccerPlayer, person
		t.Fatalf("distinct rows = %d, want 2", len(dis.Rows))
	}
	if len(all.Rows) < len(dis.Rows) {
		t.Fatalf("non-distinct returned fewer rows than distinct")
	}
}

func TestConstantAbsentFromStore(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT ?x WHERE { ?x rdfs:label "Atlantis" }`)
	if len(res.Rows) != 0 {
		t.Fatalf("expected no rows, got %v", res.Rows)
	}
	if run(t, s, `ASK { y:Atlantis y:hasCapital y:Rome }`).Bool {
		t.Error("absent constant matched")
	}
}

func TestUnboundStarStartRejected(t *testing.T) {
	s := fixture()
	_, err := NewEngine(s).Run(`SELECT ?x ?y WHERE { ?x rdfs:subClassOf* ?y }`)
	if err == nil {
		t.Fatal("expected unsupported-pattern error")
	}
}

func TestSelectStarProjectsAllVars(t *testing.T) {
	s := fixture()
	res := run(t, s, `SELECT * WHERE { ?x y:nationality ?c }`)
	if len(res.Vars) != 2 {
		t.Fatalf("vars = %v", res.Vars)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestSharedVariableAcrossPathAndEnds(t *testing.T) {
	s := fixture()
	// ?p used twice must bind consistently.
	res := run(t, s, `SELECT ?p WHERE {
		y:Italy ?p y:Rome .
		y:Spain ?p y:Madrid }`)
	if len(res.Rows) != 1 || s.Term(res.Rows[0]["p"]).Value != "y:hasCapital" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDeterministicOrdering(t *testing.T) {
	s := fixture()
	q := `SELECT ?x WHERE { ?x rdf:type y:country }`
	a := run(t, s, q)
	b := run(t, s, q)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("nondeterministic row count")
	}
	for i := range a.Rows {
		if a.Rows[i]["x"] != b.Rows[i]["x"] {
			t.Fatal("nondeterministic row order")
		}
	}
}

func BenchmarkQTypes(b *testing.B) {
	s := fixture()
	eng := NewEngine(s)
	q := MustParse(`SELECT DISTINCT ?c WHERE {
		?x rdfs:label "Rome" .
		?x rdf:type/rdfs:subClassOf* ?c }`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Eval(q); err != nil {
			b.Fatal(err)
		}
	}
}
