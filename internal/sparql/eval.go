package sparql

import (
	"fmt"
	"sort"
	"strings"

	"katara/internal/rdf"
)

// Engine evaluates queries against an rdf.Store.
type Engine struct {
	store *rdf.Store
}

// NewEngine returns an engine over s.
func NewEngine(s *rdf.Store) *Engine { return &Engine{store: s} }

// Binding maps variable names to term IDs.
type Binding map[string]rdf.ID

// Result carries the outcome of a query.
type Result struct {
	Vars  []string  // projected variables (Select)
	Rows  []Binding // one binding per solution (Select)
	Bool  bool      // Ask outcome
	Count int       // aggregate value for COUNT queries
}

// Run parses and evaluates src.
func (e *Engine) Run(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Eval(q)
}

// Eval evaluates a parsed query.
func (e *Engine) Eval(q *Query) (*Result, error) {
	bindings, err := e.evalNodes(q.Where, []Binding{{}})
	if err != nil {
		return nil, err
	}

	if q.Kind == Ask {
		return &Result{Bool: len(bindings) > 0}, nil
	}

	if q.CountVar != "" {
		n := 0
		if q.CountOf != "" {
			seen := map[rdf.ID]bool{}
			for _, b := range bindings {
				if id, ok := b[q.CountOf]; ok {
					if q.Distinct {
						if seen[id] {
							continue
						}
						seen[id] = true
					}
					n++
				}
			}
		} else {
			n = len(bindings)
		}
		return &Result{Vars: []string{q.CountVar}, Count: n}, nil
	}

	vars := q.Vars
	if len(vars) == 0 {
		vars = allVars(q.Where, nil)
	}
	rows := project(bindings, vars, q.Distinct)
	if q.OrderBy != "" {
		e.orderRows(rows, q.OrderBy, q.OrderDesc)
	} else {
		sortRows(rows, vars)
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return &Result{Vars: vars, Rows: rows}, nil
}

// evalNodes threads a binding set through a group graph pattern.
func (e *Engine) evalNodes(nodes []Node, bindings []Binding) ([]Binding, error) {
	for _, n := range nodes {
		if len(bindings) == 0 {
			return nil, nil
		}
		var err error
		switch n := n.(type) {
		case TripleNode:
			var next []Binding
			for _, b := range bindings {
				matches, merr := e.matchPattern(n.Pattern, b)
				if merr != nil {
					return nil, merr
				}
				next = append(next, matches...)
			}
			bindings = next
		case FilterNode:
			bindings = e.applyFilter(n.Filter, bindings)
		case OptionalNode:
			var next []Binding
			for _, b := range bindings {
				ext, oerr := e.evalNodes(n.Where, []Binding{b})
				if oerr != nil {
					return nil, oerr
				}
				if len(ext) == 0 {
					next = append(next, b)
				} else {
					next = append(next, ext...)
				}
			}
			bindings = next
		case UnionNode:
			var next []Binding
			for _, br := range n.Branches {
				ext, uerr := e.evalNodes(br, bindings)
				if uerr != nil {
					return nil, uerr
				}
				next = append(next, ext...)
			}
			bindings = next
		default:
			err = fmt.Errorf("sparql: unknown pattern node %T", n)
		}
		if err != nil {
			return nil, err
		}
	}
	return bindings, nil
}

func (e *Engine) applyFilter(f Filter, bindings []Binding) []Binding {
	var out []Binding
	for _, b := range bindings {
		l, lok := e.resolveFilterTerm(f.Left, b)
		r, rok := e.resolveFilterTerm(f.Right, b)
		if !lok || !rok {
			continue
		}
		if (l == r) != f.Negated {
			out = append(out, b)
		}
	}
	return out
}

// orderRows sorts by the lexical form of the ordering variable's term.
func (e *Engine) orderRows(rows []Binding, v string, desc bool) {
	key := func(b Binding) string {
		id, ok := b[v]
		if !ok {
			return ""
		}
		return e.store.Term(id).Value
	}
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := key(rows[i]), key(rows[j])
		if desc {
			return a > b
		}
		return a < b
	})
}

func (e *Engine) resolveFilterTerm(n NodeSpec, b Binding) (rdf.ID, bool) {
	switch n.Kind {
	case VarNode:
		id, ok := b[n.Value]
		return id, ok
	case IRINode:
		id := e.store.LookupTerm(rdf.IRI(n.Value))
		return id, id != rdf.NoID
	default:
		id := e.store.LookupTerm(rdf.Lit(n.Value))
		return id, id != rdf.NoID
	}
}

func allVars(nodes []Node, vars []string) []string {
	set := map[string]bool{}
	for _, v := range vars {
		set[v] = true
	}
	add := func(name string) {
		if name != "" && !set[name] {
			set[name] = true
			vars = append(vars, name)
		}
	}
	addPattern := func(pat Pattern) {
		if pat.Subject.Kind == VarNode {
			add(pat.Subject.Value)
		}
		for _, e := range pat.Path {
			add(e.Var)
		}
		if pat.Object.Kind == VarNode {
			add(pat.Object.Value)
		}
	}
	for _, n := range nodes {
		switch n := n.(type) {
		case TripleNode:
			addPattern(n.Pattern)
		case OptionalNode:
			vars = allVars(n.Where, vars)
			for _, v := range vars {
				set[v] = true
			}
		case UnionNode:
			for _, br := range n.Branches {
				vars = allVars(br, vars)
				for _, v := range vars {
					set[v] = true
				}
			}
		}
	}
	return vars
}

func project(bindings []Binding, vars []string, distinct bool) []Binding {
	rows := make([]Binding, 0, len(bindings))
	seen := map[string]bool{}
	var key strings.Builder
	for _, b := range bindings {
		row := make(Binding, len(vars))
		for _, v := range vars {
			if id, ok := b[v]; ok {
				row[v] = id
			}
		}
		if distinct {
			key.Reset()
			for _, v := range vars {
				fmt.Fprintf(&key, "%d|", row[v])
			}
			if seen[key.String()] {
				continue
			}
			seen[key.String()] = true
		}
		rows = append(rows, row)
	}
	return rows
}

func sortRows(rows []Binding, vars []string) {
	sort.Slice(rows, func(i, j int) bool {
		for _, v := range vars {
			a, b := rows[i][v], rows[j][v]
			if a != b {
				return a < b
			}
		}
		return false
	})
}

// node is a frontier element during path traversal.
type node struct {
	id rdf.ID
	b  Binding
}

// matchPattern returns the extensions of b that satisfy pat.
func (e *Engine) matchPattern(pat Pattern, b Binding) ([]Binding, error) {
	subjID, subjVar, ok := e.resolveNode(pat.Subject, b)
	if !ok {
		return nil, nil
	}
	objID, objVar, ok := e.resolveNode(pat.Object, b)
	if !ok {
		return nil, nil
	}

	switch {
	case subjID != rdf.NoID:
		frontier := []node{{id: subjID, b: b}}
		frontier, err := e.walk(pat.Path, frontier, true)
		if err != nil {
			return nil, err
		}
		return e.closeEnd(frontier, objID, objVar), nil
	case objID != rdf.NoID:
		// Walk backward with the reversed path.
		frontier := []node{{id: objID, b: b}}
		frontier, err := e.walk(reversePath(pat.Path), frontier, false)
		if err != nil {
			return nil, err
		}
		return e.closeEnd(frontier, rdf.NoID, subjVar), nil
	default:
		// Both ends unbound: enumerate candidate subjects from the first
		// path element, then walk forward.
		starts, err := e.enumerateStarts(pat.Path)
		if err != nil {
			return nil, err
		}
		var out []Binding
		for _, s := range starts {
			nb := cloneBinding(b)
			nb[subjVar] = s
			frontier, err := e.walk(pat.Path, []node{{id: s, b: nb}}, true)
			if err != nil {
				return nil, err
			}
			out = append(out, e.closeEnd(frontier, rdf.NoID, objVar)...)
		}
		return out, nil
	}
}

// resolveNode resolves a node spec under binding b. It returns the concrete
// ID if known (rdf.NoID otherwise), the variable name if unbound, and
// whether the pattern can match at all (a constant absent from the store
// cannot).
func (e *Engine) resolveNode(n NodeSpec, b Binding) (rdf.ID, string, bool) {
	switch n.Kind {
	case VarNode:
		if id, ok := b[n.Value]; ok {
			return id, "", true
		}
		return rdf.NoID, n.Value, true
	case IRINode:
		id := e.store.LookupTerm(rdf.IRI(n.Value))
		return id, "", id != rdf.NoID
	default:
		id := e.store.LookupTerm(rdf.Lit(n.Value))
		return id, "", id != rdf.NoID
	}
}

// closeEnd finalises a walk: keeps frontier entries landing on want (if set)
// or binds the end node to endVar.
func (e *Engine) closeEnd(frontier []node, want rdf.ID, endVar string) []Binding {
	var out []Binding
	for _, n := range frontier {
		switch {
		case want != rdf.NoID:
			if n.id == want {
				out = append(out, n.b)
			}
		case endVar != "":
			if bound, ok := n.b[endVar]; ok {
				if bound == n.id {
					out = append(out, n.b)
				}
				continue
			}
			nb := cloneBinding(n.b)
			nb[endVar] = n.id
			out = append(out, nb)
		default:
			out = append(out, n.b)
		}
	}
	return out
}

// walk advances the frontier through each path element. forward selects
// traversal direction; when false the path must already be reversed.
func (e *Engine) walk(path []PathElt, frontier []node, forward bool) ([]node, error) {
	for _, elt := range path {
		var next []node
		seen := map[string]bool{}
		push := func(n node) {
			k := frontierKey(n)
			if !seen[k] {
				seen[k] = true
				next = append(next, n)
			}
		}
		for _, cur := range frontier {
			if err := e.step(elt, cur, forward, push); err != nil {
				return nil, err
			}
		}
		frontier = next
		if len(frontier) == 0 {
			return nil, nil
		}
	}
	return frontier, nil
}

func frontierKey(n node) string {
	keys := make([]string, 0, len(n.b))
	for k := range n.b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", n.id)
	for _, k := range keys {
		fmt.Fprintf(&sb, "|%s=%d", k, n.b[k])
	}
	return sb.String()
}

func (e *Engine) step(elt PathElt, cur node, forward bool, push func(node)) error {
	st := e.store
	if elt.Var != "" {
		if bound, ok := cur.b[elt.Var]; ok {
			for _, nxt := range e.neighbors(cur.id, bound, forward) {
				push(node{id: nxt, b: cur.b})
			}
			return nil
		}
		// Unbound variable predicate: enumerate predicates incident to cur.
		if forward {
			for _, tr := range st.Description(cur.id) {
				nb := cloneBinding(cur.b)
				nb[elt.Var] = tr.P
				push(node{id: tr.O, b: nb})
			}
		} else {
			for _, p := range st.Predicates() {
				for _, s := range st.Subjects(p, cur.id) {
					nb := cloneBinding(cur.b)
					nb[elt.Var] = p
					push(node{id: s, b: nb})
				}
			}
		}
		return nil
	}
	p := st.LookupTerm(rdf.IRI(elt.IRI))
	if p == rdf.NoID {
		if elt.Star {
			push(cur) // zero hops still succeed
		}
		return nil
	}
	if !elt.Star {
		for _, nxt := range e.neighbors(cur.id, p, forward) {
			push(node{id: nxt, b: cur.b})
		}
		return nil
	}
	// Zero-or-more: BFS closure including the start node.
	visited := map[rdf.ID]bool{cur.id: true}
	queue := []rdf.ID{cur.id}
	push(cur)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, nxt := range e.neighbors(n, p, forward) {
			if !visited[nxt] {
				visited[nxt] = true
				queue = append(queue, nxt)
				push(node{id: nxt, b: cur.b})
			}
		}
	}
	return nil
}

func (e *Engine) neighbors(n, p rdf.ID, forward bool) []rdf.ID {
	if forward {
		return e.store.Objects(n, p)
	}
	return e.store.Subjects(p, n)
}

// enumerateStarts lists candidate subjects when both pattern ends are
// unbound: the subjects carrying the first path element's predicate.
func (e *Engine) enumerateStarts(path []PathElt) ([]rdf.ID, error) {
	first := path[0]
	if first.Var != "" {
		// Any subject of any predicate.
		set := map[rdf.ID]bool{}
		for _, p := range e.store.Predicates() {
			for _, s := range e.store.SubjectsWithPredicate(p) {
				set[s] = true
			}
		}
		out := make([]rdf.ID, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out, nil
	}
	if first.Star {
		return nil, fmt.Errorf("sparql: pattern with unbound ends starting with a '*' path is not supported")
	}
	p := e.store.LookupTerm(rdf.IRI(first.IRI))
	if p == rdf.NoID {
		return nil, nil
	}
	return e.store.SubjectsWithPredicate(p), nil
}

func reversePath(path []PathElt) []PathElt {
	out := make([]PathElt, len(path))
	for i, e := range path {
		out[len(path)-1-i] = e
	}
	return out
}

func cloneBinding(b Binding) Binding {
	nb := make(Binding, len(b)+1)
	for k, v := range b {
		nb[k] = v
	}
	return nb
}
