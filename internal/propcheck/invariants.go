package propcheck

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sort"

	"katara"
	"katara/internal/annotation"
	"katara/internal/discovery"
	"katara/internal/kbstats"
	"katara/internal/pattern"
	"katara/internal/provenance"
	"katara/internal/rdf"
	"katara/internal/repair"
	"katara/internal/resolve"
	"katara/internal/similarity"
	"katara/internal/workload"
)

const eps = 1e-9

// checkAnnotationPartition asserts the §6.1 label partition: every tuple
// carries exactly one verdict, row order is preserved, Unknown appears only
// in a degraded run under DegradeMarkUnknown, degraded flags reconcile with
// the DegradeReport, and no facts are minted for Erroneous/Unknown tuples.
func checkAnnotationPartition(sc *Scenario, rep *katara.Report, degradedRun bool, policy katara.DegradePolicy) error {
	if got, want := len(rep.Annotations), sc.Dirty.NumRows(); got != want {
		return fmt.Errorf("got %d annotations for %d rows", got, want)
	}
	degraded := 0
	for i, t := range rep.Annotations {
		if t.Row != i {
			return fmt.Errorf("annotation %d carries row %d", i, t.Row)
		}
		switch t.Label {
		case katara.ValidatedByKB, katara.ValidatedByCrowd, katara.Erroneous:
		case katara.Unknown:
			if !degradedRun {
				return fmt.Errorf("row %d labelled Unknown outside a degraded run", i)
			}
			if policy != katara.DegradeMarkUnknown {
				return fmt.Errorf("row %d labelled Unknown under policy %v", i, policy)
			}
			if !t.Degraded {
				return fmt.Errorf("row %d labelled Unknown without its Degraded flag", i)
			}
		default:
			return fmt.Errorf("row %d carries label %d outside the §6.1 partition", i, t.Label)
		}
		if t.Degraded {
			degraded++
			if !degradedRun {
				return fmt.Errorf("row %d degraded in a run with no budget or deadline", i)
			}
		}
		if (t.Label == katara.Erroneous || t.Label == katara.Unknown) && len(t.NewFacts) > 0 {
			return fmt.Errorf("row %d labelled %v yet minted %d facts", i, t.Label, len(t.NewFacts))
		}
	}
	if degraded != rep.Degraded.Tuples {
		return fmt.Errorf("%d tuples carry the Degraded flag but DegradeReport.Tuples = %d", degraded, rep.Degraded.Tuples)
	}
	return nil
}

// checkRepairScope asserts that repairs only target rows flagged Erroneous,
// respect the top-k cap, and that each repair is internally consistent:
// nondecreasing costs, cost equal to the (unit-weight) number of changes,
// and every change rewriting the actual dirty cell to the aligned graph's
// value, never a no-op.
func checkRepairScope(sc *Scenario, rep *katara.Report) error {
	if rep.Degraded.RepairsSkipped {
		if len(rep.Repairs) != 0 {
			return fmt.Errorf("RepairsSkipped set but %d repair lists present", len(rep.Repairs))
		}
		return nil
	}
	errRows := erroneousRows(rep)
	for row, list := range rep.Repairs {
		if !errRows[row] {
			return fmt.Errorf("row %d has repairs but is not labelled Erroneous", row)
		}
		if len(list) > 3 {
			return fmt.Errorf("row %d: %d repairs exceed RepairK=3", row, len(list))
		}
		prev := math.Inf(-1)
		for rank, rp := range list {
			if rp.Cost < prev-eps {
				return fmt.Errorf("row %d: cost decreases at rank %d (%.6f after %.6f)", row, rank, rp.Cost, prev)
			}
			prev = rp.Cost
			if math.Abs(rp.Cost-float64(len(rp.Changes))) > eps {
				return fmt.Errorf("row %d rank %d: cost %.6f != %d unit-weight changes", row, rank, rp.Cost, len(rp.Changes))
			}
			seen := map[int]bool{}
			for _, ch := range rp.Changes {
				if ch.Col < 0 || ch.Col >= sc.Dirty.NumCols() {
					return fmt.Errorf("row %d rank %d: change column %d out of range", row, rank, ch.Col)
				}
				if seen[ch.Col] {
					return fmt.Errorf("row %d rank %d: duplicate change for column %d", row, rank, ch.Col)
				}
				seen[ch.Col] = true
				if ch.From != sc.Dirty.Cell(row, ch.Col) {
					return fmt.Errorf("row %d rank %d col %d: change.From %q != cell %q", row, rank, ch.Col, ch.From, sc.Dirty.Cell(row, ch.Col))
				}
				if ch.From == ch.To {
					return fmt.Errorf("row %d rank %d col %d: no-op change %q", row, rank, ch.Col, ch.From)
				}
				if rp.Graph != nil && rp.Graph.Value[ch.Col] != ch.To {
					return fmt.Errorf("row %d rank %d col %d: change.To %q != graph value %q", row, rank, ch.Col, ch.To, rp.Graph.Value[ch.Col])
				}
			}
		}
	}
	return nil
}

// countKBCoveredRewrites measures how many suggested changes touch a cell
// whose type check the KB passed (NodeByKB true). This is reported, not
// asserted: a domain-swap error (Italy → France) keeps the cell
// type-valid, so Alg. 4 legitimately rewrites type-covered cells — see
// DESIGN.md §12.
func countKBCoveredRewrites(rep *katara.Report) int {
	n := 0
	for row, list := range rep.Repairs {
		if row >= len(rep.Annotations) {
			continue
		}
		ann := rep.Annotations[row]
		for _, rp := range list {
			for _, ch := range rp.Changes {
				if ann.NodeByKB[ch.Col] {
					n++
				}
			}
		}
	}
	return n
}

// checkRepairRetrieval rebuilds the repair index the run used (BuildIndex
// is deterministic) and asserts, per erroneous row: the run's repairs match
// a fresh TopK, the inverted-list TopK matches the naive scan, and TopK is
// monotone in k (each TopK(k) is a prefix of TopK(k+1), costs
// nondecreasing).
func checkRepairRetrieval(sc *Scenario, rep *katara.Report, store *rdf.Store) error {
	if rep.Pattern == nil || len(rep.Pattern.Edges) == 0 || rep.Degraded.RepairsSkipped {
		return nil
	}
	rows := make([]int, 0, len(rep.Repairs))
	for r := range rep.Repairs {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	if len(rows) == 0 {
		return nil
	}
	ix := repair.BuildIndex(store, rep.Pattern, repair.Options{Workers: 1})
	const k = 3
	for _, row := range rows {
		tuple := sc.Dirty.Rows[row]
		got := ix.TopK(tuple, k)
		if !reflect.DeepEqual(rep.Repairs[row], got) {
			return fmt.Errorf("row %d: rebuilt TopK differs from the run's repairs", row)
		}
		naive := ix.TopKNaive(tuple, k)
		if !reflect.DeepEqual(got, naive) {
			return fmt.Errorf("row %d: inverted-list TopK differs from naive scan", row)
		}
		var prevList []repair.Repair
		for kk := 1; kk <= k+2; kk++ {
			cur := ix.TopK(tuple, kk)
			if len(cur) > kk {
				return fmt.Errorf("row %d: TopK(%d) returned %d repairs", row, kk, len(cur))
			}
			if len(cur) < len(prevList) {
				return fmt.Errorf("row %d: TopK(%d) returned fewer repairs than TopK(%d)", row, kk, kk-1)
			}
			for i := range prevList {
				if !reflect.DeepEqual(prevList[i], cur[i]) {
					return fmt.Errorf("row %d: TopK(%d) is not a prefix of TopK(%d)", row, kk-1, kk)
				}
			}
			for i := 1; i < len(cur); i++ {
				if cur[i].Cost < cur[i-1].Cost-eps {
					return fmt.Errorf("row %d: TopK(%d) costs not nondecreasing", row, kk)
				}
			}
			prevList = cur
		}
	}
	return nil
}

// checkProvenance asserts the lineage contracts on a recording run and
// returns the run's serialized journal for cross-configuration comparison:
//   - the journal is well-formed (LintJournal passes);
//   - every repaired cell explains to a non-empty evidence chain;
//   - recorded candidates are in (cost, graph) rank order, so re-sorting
//     them is a no-op and rank 0 is the winner;
//   - the winner replays to the repair the pipeline actually applied,
//     change for change.
func checkProvenance(sc *Scenario, rep *katara.Report) ([]byte, error) {
	rec := rep.Provenance
	if !rec.Enabled() {
		return nil, fmt.Errorf("provenance run returned a disabled recorder")
	}
	var buf bytes.Buffer
	if err := rec.WriteJournal(&buf); err != nil {
		return nil, fmt.Errorf("provenance journal write: %w", err)
	}
	if err := provenance.LintJournal(bytes.NewReader(buf.Bytes())); err != nil {
		return nil, fmt.Errorf("provenance journal lint: %w", err)
	}
	for row, list := range rep.Repairs {
		if len(list) == 0 {
			continue
		}
		applied := list[0]
		for _, ch := range applied.Changes {
			e := rec.Explain(row, ch.Col)
			if e.Empty() || e.Repair == nil || len(e.Repair.Candidates) == 0 {
				return nil, fmt.Errorf("repaired cell (%d,%d) has no evidence chain", row, ch.Col)
			}
			cands := e.Repair.Candidates
			if !sort.SliceIsSorted(cands, func(i, j int) bool {
				if cands[i].Cost != cands[j].Cost {
					return cands[i].Cost < cands[j].Cost
				}
				return cands[i].Graph < cands[j].Graph
			}) {
				return nil, fmt.Errorf("cell (%d,%d): recorded candidates not in (cost, graph) rank order", row, ch.Col)
			}
			winner := cands[0]
			if len(winner.Changes) != len(applied.Changes) {
				return nil, fmt.Errorf("cell (%d,%d): winner has %d changes, applied repair %d",
					row, ch.Col, len(winner.Changes), len(applied.Changes))
			}
			for i, wc := range winner.Changes {
				ac := applied.Changes[i]
				if wc.Col != ac.Col || wc.From != ac.From || wc.To != ac.To {
					return nil, fmt.Errorf("cell (%d,%d): winner change %d (%+v) does not replay the applied change (%+v)",
						row, ch.Col, i, wc, ac)
				}
			}
			if e.Change == nil || e.Change.From != ch.From || e.Change.To != ch.To {
				return nil, fmt.Errorf("cell (%d,%d): explanation's applied change does not match the repair", row, ch.Col)
			}
		}
	}
	return buf.Bytes(), nil
}

// checkRankJoin compares the rank-join search against brute-force
// enumeration: same length, the same score at every rank, every rank-join
// pattern's score self-consistent with a recomputation, and every pattern
// strictly above the exhaustive cutoff present in the exhaustive list (at
// the cutoff itself, ties may resolve to different but equally-scored
// patterns). Returns skipped=true when the candidate space exceeds
// ExhaustiveTopK's refusal bound.
func checkRankJoin(cands *discovery.Candidates) (skipped bool, err error) {
	const k = 5
	topk := discovery.TopK(cands, k)
	ex, exErr := discovery.ExhaustiveTopK(cands, k)
	if exErr != nil {
		return true, nil
	}
	if len(topk) != len(ex) {
		return false, fmt.Errorf("rank-join returned %d patterns, exhaustive %d", len(topk), len(ex))
	}
	for i := range topk {
		if math.Abs(topk[i].Score-ex[i].Score) > eps {
			return false, fmt.Errorf("rank %d: rank-join score %.9f != exhaustive %.9f", i, topk[i].Score, ex[i].Score)
		}
		if re := discovery.Score(topk[i], cands); math.Abs(re-topk[i].Score) > eps {
			return false, fmt.Errorf("rank %d: reported score %.9f != recomputed %.9f", i, topk[i].Score, re)
		}
	}
	if len(ex) > 0 {
		cutoff := ex[len(ex)-1].Score
		keys := map[string]bool{}
		for _, p := range ex {
			keys[p.Key()] = true
		}
		for i, p := range topk {
			if p.Score > cutoff+eps && !keys[p.Key()] {
				return false, fmt.Errorf("rank %d: pattern %s above the cutoff is missing from exhaustive", i, p.Key())
			}
		}
	}
	return false, nil
}

// checkResolverDifferential asserts cache-on ≡ cache-off: candidate
// generation and annotation produce identical outputs whether label
// resolution goes through resolve.Cache or hits the KB directly.
func checkResolverDifferential(sc *Scenario, stats *kbstats.Stats, base *discovery.Candidates) error {
	cache := resolve.New(sc.KB.Store, similarity.DefaultThreshold)
	cached := discovery.Generate(sc.Dirty, stats, discovery.Options{MaxCandidates: 4, Resolver: cache})
	if !reflect.DeepEqual(base.Columns, cached.Columns) {
		return fmt.Errorf("cached resolution changed column candidates")
	}
	if !reflect.DeepEqual(base.Pairs, cached.Pairs) {
		return fmt.Errorf("cached resolution changed pair candidates")
	}

	// Annotation half. Identical clones share term IDs (Clone iterates
	// triples deterministically), so a pattern discovered on one clone
	// applies to its sibling; each run still needs its own clone because
	// enrichment mutates the store.
	kbA, kbB := sc.KB.Clone(), sc.KB.Clone()
	candsA := discovery.Generate(sc.Dirty, kbstats.New(kbA.Store), discovery.Options{MaxCandidates: 4})
	ps := discovery.TopK(candsA, 1)
	if len(ps) == 0 {
		return nil
	}
	p := ps[0]
	direct := annotateWith(sc, p, kbA, nil)
	viaCache := annotateWith(sc, p, kbB, resolve.New(kbB.Store, similarity.DefaultThreshold))
	if !reflect.DeepEqual(direct, viaCache) {
		return fmt.Errorf("cached annotation differs from direct annotation")
	}
	return nil
}

func annotateWith(sc *Scenario, p *pattern.Pattern, kb *workload.KB, resolver pattern.LabelSource) *annotation.Result {
	ann := &annotation.Annotator{
		KB:       kb.Store,
		Pattern:  p,
		Crowd:    newOracleCrowd(),
		Oracle:   workload.WorldOracle{W: sc.World, KB: kb},
		Enrich:   true,
		Workers:  1,
		Resolver: resolver,
	}
	return ann.Annotate(sc.Dirty)
}
