// Invariant: journal replay ≡ fresh run. A cleaning job interrupted by a
// daemon crash and re-run from the replayed journal must produce a result
// document byte-identical to the same job run uninterrupted — and once
// terminal, further restarts must serve that document verbatim without ever
// re-executing the pipeline. This is the jobs-layer extension of the
// differential matrix: crash/replay joins workers/shards/faults/telemetry in
// the list of things that may never change a report.
package propcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"katara"
	"katara/internal/jobs"
	"katara/internal/telemetry"
)

// checkJournalReplay runs the scenario through three job managers: an
// uninterrupted journal-less oracle, a journaled boot that crashes mid-run
// and is replayed into a second boot, and a third boot that must serve the
// terminal result without re-running. All three result documents must be
// byte-identical.
func checkJournalReplay(sc *Scenario) error {
	runFn := func(context.Context, *katara.KB, *katara.Table, jobs.Params, *telemetry.Pipeline) (*katara.Report, error) {
		rep, _, err := sc.Run(RunConfig{Workers: 1})
		return rep, err
	}
	wait := func(m *jobs.Manager, id string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		return m.Wait(ctx, id)
	}
	resultJSON := func(m *jobs.Manager, id string) ([]byte, error) {
		doc, state, ok, err := m.Result(id)
		if err != nil || !ok {
			return nil, fmt.Errorf("result %s: state=%s ok=%v err=%v", id, state, ok, err)
		}
		return json.Marshal(doc)
	}

	// Oracle: the crash-free run.
	m0 := jobs.NewManager(jobs.Config{Run: runFn, MaxConcurrent: 1})
	id, err := m0.Submit(sc.Dirty, jobs.Params{})
	if err != nil {
		return fmt.Errorf("oracle submit: %w", err)
	}
	if err := wait(m0, id); err != nil {
		return fmt.Errorf("oracle wait: %w", err)
	}
	oracle, err := resultJSON(m0, id)
	if err != nil {
		return fmt.Errorf("oracle %w", err)
	}
	m0.Close()

	// Boot 1: journaled, crashes while the job is mid-run. The journal is
	// closed first — after that instant nothing reaches disk, exactly like a
	// SIGKILL — and only then is the blocked job released so the abandoned
	// manager's goroutines can exit.
	dir, err := os.MkdirTemp("", "propcheck-journal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	j1, rep1, err := jobs.OpenJournal(dir)
	if err != nil {
		return fmt.Errorf("journal boot 1: %w", err)
	}
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	blockRun := func(ctx context.Context, _ *katara.KB, _ *katara.Table, _ jobs.Params, _ *telemetry.Pipeline) (*katara.Report, error) {
		started <- struct{}{}
		<-block
		return nil, errors.New("crashed")
	}
	m1 := jobs.NewManager(jobs.Config{Run: blockRun, MaxConcurrent: 1, Journal: j1, Replay: rep1})
	id1, err := m1.Submit(sc.Dirty, jobs.Params{})
	if err != nil {
		return fmt.Errorf("boot-1 submit: %w", err)
	}
	if id1 != id {
		return fmt.Errorf("boot-1 ID %s != oracle ID %s", id1, id)
	}
	<-started
	if err := j1.Close(); err != nil {
		return fmt.Errorf("crash (journal close): %w", err)
	}
	close(block)

	// Boot 2: replay re-queues the interrupted job; the re-run must match
	// the oracle byte-for-byte.
	j2, rep2, err := jobs.OpenJournal(dir)
	if err != nil {
		return fmt.Errorf("journal boot 2: %w", err)
	}
	m2 := jobs.NewManager(jobs.Config{Run: runFn, MaxConcurrent: 1, Journal: j2, Replay: rep2})
	if rec := m2.Recovery(); rec.Requeued != 1 {
		return fmt.Errorf("boot-2 recovery = %+v, want 1 requeued", rec)
	}
	if err := wait(m2, id1); err != nil {
		return fmt.Errorf("boot-2 wait: %w", err)
	}
	replayed, err := resultJSON(m2, id1)
	if err != nil {
		return fmt.Errorf("boot-2 %w", err)
	}
	if !bytes.Equal(oracle, replayed) {
		return fmt.Errorf("replayed run differs from crash-free oracle:\noracle  %s\nreplay  %s", oracle, replayed)
	}
	m2.Close()
	if err := j2.Close(); err != nil {
		return fmt.Errorf("boot-2 journal close: %w", err)
	}

	// Boot 3: the job is terminal in the journal; it must come back
	// retrievable and byte-identical without the pipeline running again.
	j3, rep3, err := jobs.OpenJournal(dir)
	if err != nil {
		return fmt.Errorf("journal boot 3: %w", err)
	}
	defer j3.Close()
	reran := errors.New("terminal job re-ran after replay")
	m3 := jobs.NewManager(jobs.Config{Run: func(context.Context, *katara.KB, *katara.Table, jobs.Params, *telemetry.Pipeline) (*katara.Report, error) {
		return nil, reran
	}, MaxConcurrent: 1, Journal: j3, Replay: rep3})
	defer m3.Close()
	if rec := m3.Recovery(); rec.Terminal != 1 || rec.Requeued != 0 {
		return fmt.Errorf("boot-3 recovery = %+v, want 1 terminal", rec)
	}
	recovered, err := resultJSON(m3, id1)
	if err != nil {
		return fmt.Errorf("boot-3 %w", err)
	}
	if !bytes.Equal(replayed, recovered) {
		return fmt.Errorf("terminal result changed across restart:\nbefore %s\nafter  %s", replayed, recovered)
	}
	return nil
}
