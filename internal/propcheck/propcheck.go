// Package propcheck is the deterministic property/metamorphic correctness
// harness: it generates randomized worlds, tables and KBs on top of
// internal/workload, runs the full pipeline over a differential
// configuration matrix (worker counts × fault injection × telemetry), and
// asserts the invariant catalog documented in DESIGN.md §12 after every
// run.
//
// Everything is seed-driven: Generate(seed) always builds the same
// scenario, and RunSeed(seed) always performs the same checks, so any
// failure reproduces with
//
//	go test ./internal/propcheck -run TestProperties -seed <n>
package propcheck

import (
	"math/rand"

	"katara/internal/table"
	"katara/internal/workload"
	"katara/internal/world"
)

// Scenario is one generated correctness trial: a ground-truth world, a KB
// view of it (possibly poisoned with label-collision decoys), a clean table
// drawn from the world and the dirty copy the pipeline must clean.
type Scenario struct {
	Seed int64
	// Kind names the table family, for failure messages.
	Kind string
	// KBName is "yago" or "dbpedia".
	KBName string

	World *world.World
	// KB is the pristine knowledge base. Runs must clone KB.Store before
	// cleaning: annotation enrichment mutates the store.
	KB   *workload.KB
	Spec *workload.TableSpec
	// Clean is the ground-truth table, Dirty the error-injected copy fed to
	// the pipeline.
	Clean *table.Table
	Dirty *table.Table
	// Injected lists the cells InjectErrors corrupted.
	Injected []table.CellRef

	// ErrorRate is the per-tuple corruption rate used for injection.
	ErrorRate float64
	// Skewed reports whether rows were duplicated to skew the value
	// distribution.
	Skewed bool
	// Collisions counts the adversarial near-duplicate labels planted in
	// the KB.
	Collisions int
}

// Generate deterministically builds the scenario for one seed. World sizes,
// KB choice, table family, row counts, skew, error rate and the
// label-collision adversary are all drawn from a single rand stream seeded
// with seed, so the same seed always yields the same scenario.
func Generate(seed int64) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	cfg := world.Config{
		Persons:      80 + rng.Intn(60),
		Players:      40 + rng.Intn(30),
		Clubs:        8 + rng.Intn(6),
		Universities: 30 + rng.Intn(20),
		Films:        12 + rng.Intn(8),
		Books:        12 + rng.Intn(8),
		ExtraCities:  1 + rng.Intn(3),
	}
	w := world.New(seed, cfg)

	var kb *workload.KB
	kbName := "dbpedia"
	if rng.Intn(2) == 1 {
		kb = workload.YagoLike(w, seed)
		kbName = "yago"
	} else {
		kb = workload.DBpediaLike(w, seed)
	}

	rows := 30 + rng.Intn(50)
	var spec *workload.TableSpec
	var kind string
	// Mixing the seed into the family draw decorrelates consecutive seeds
	// (math/rand gives nearby seeds correlated early draws), so any
	// contiguous -seeds window covers all four table families.
	switch (rng.Intn(4) + int(seed&3)) % 4 {
	case 0:
		spec, kind = workload.PersonTable(w, seed+101, rows), "person"
	case 1:
		spec, kind = workload.SoccerTable(w, seed+101, rows), "soccer"
	case 2:
		spec, kind = workload.UniversityTable(w, seed+101, rows), "university"
	default:
		d := workload.WikiTables(w, seed+101)
		spec, kind = d.Specs[rng.Intn(len(d.Specs))], "wiki"
	}

	skewed := false
	if rng.Float64() < 0.5 {
		skewed = skewRows(spec.Table, rng)
	}
	padRows(spec.Table, rng, 10)

	clean := spec.Table.Clone()
	dirty := spec.Table.Clone()

	// Error-free scenarios are kept in the mix on purpose: the pipeline
	// must also be a no-op detector.
	var errRate float64
	if rng.Float64() >= 0.15 {
		errRate = 0.05 + rng.Float64()*0.20
	}
	cols := make([]int, dirty.NumCols())
	for i := range cols {
		cols[i] = i
	}
	injected := table.InjectErrors(dirty, cols, errRate, rng)

	collisions := 0
	if rng.Float64() < 0.6 {
		values := distinctValues(dirty)
		collisions = workload.InjectLabelCollisions(kb, rng, values, 3+rng.Intn(8))
	}

	return &Scenario{
		Seed:       seed,
		Kind:       kind,
		KBName:     kbName,
		World:      w,
		KB:         kb,
		Spec:       spec,
		Clean:      clean,
		Dirty:      dirty,
		Injected:   injected,
		ErrorRate:  errRate,
		Skewed:     skewed,
		Collisions: collisions,
	}
}

// skewRows overwrites a random sample of later rows with copies of early
// rows, producing the heavy-head value distributions that stress support
// counting and the resolver cache. Reports whether any row was duplicated.
func skewRows(t *table.Table, rng *rand.Rand) bool {
	n := t.NumRows()
	if n < 4 {
		return false
	}
	changed := false
	for i := n / 2; i < n; i++ {
		if rng.Float64() < 0.4 {
			copy(t.Rows[i], t.Rows[rng.Intn(n/2)])
			changed = true
		}
	}
	return changed
}

// padRows duplicates random rows until the table has at least min rows, so
// every scenario clears InjectErrors' and the sampler's minimums.
func padRows(t *table.Table, rng *rand.Rand, min int) {
	for t.NumRows() > 0 && t.NumRows() < min {
		src := t.Rows[rng.Intn(t.NumRows())]
		t.Append(append([]string(nil), src...)...)
	}
}

// distinctValues returns the table's distinct non-empty cell values in
// row-major first-appearance order (deterministic input for the adversary).
func distinctValues(t *table.Table) []string {
	seen := make(map[string]bool)
	var out []string
	for _, row := range t.Rows {
		for _, v := range row {
			if v != "" && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}
