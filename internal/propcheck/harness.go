package propcheck

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"time"

	"katara"
	"katara/internal/crowd"
	"katara/internal/discovery"
	"katara/internal/kbstats"
	"katara/internal/rdf"
	"katara/internal/workload"
)

// RunConfig is one cell of the differential matrix. Within a seed, every
// cell must produce a byte-identical canonical Report (fault accounting and
// timings excluded — see Canonical).
type RunConfig struct {
	// Workers is katara.Options.Workers: 1 serial, >1 pooled, -1 resolves
	// to GOMAXPROCS.
	Workers int
	// Shards is katara.Options.Shards: row-range shards for annotation
	// coverage and repair retrieval (0 or 1 unsharded). The invariant
	// `sharded(T, N) ≡ unsharded(T)` — byte-identical canonical reports
	// for every shard count — rides on the matrix comparison.
	Shards int
	// Faults routes crowd deliveries through a seeded FaultInjector
	// (abandonment + transient failures, zero latency) with retry enabled.
	Faults bool
	// Telemetry enables the counter/histogram pipeline.
	Telemetry bool
	// BudgetQuestions, when > 0, caps crowd questions so the run exercises
	// the degradation paths; Degrade picks the policy.
	BudgetQuestions int
	Degrade         katara.DegradePolicy
	// DedupOff disables distinct-signature execution (katara.Options.Dedup),
	// forcing per-row coverage evaluation, per-row crowd questions and
	// per-row repair ranking. Dedup-off runs are compared against the
	// dedup-on baseline on CanonicalSemantic — identical annotations, facts
	// and repairs, question counts excluded (dedup's whole point is asking
	// fewer) — plus the question-count inequality dedup <= no-dedup.
	DedupOff bool
	// Provenance enables the decision-lineage recorder. Recording cells
	// must match the non-recording baseline byte-identically on Canonical —
	// observation must not perturb the pipeline.
	Provenance bool
}

func (c RunConfig) String() string {
	s := fmt.Sprintf("workers=%d faults=%v telemetry=%v", c.Workers, c.Faults, c.Telemetry)
	if c.Shards > 1 {
		s += fmt.Sprintf(" shards=%d", c.Shards)
	}
	if c.BudgetQuestions > 0 {
		s += fmt.Sprintf(" budget=%d degrade=%v", c.BudgetQuestions, c.Degrade)
	}
	if c.DedupOff {
		s += " dedup=off"
	}
	if c.Provenance {
		s += " provenance"
	}
	return s
}

// Matrix returns the differential configurations for one seed: worker
// counts {1, 4, GOMAXPROCS} (deduplicated after resolution — on a
// single-core host GOMAXPROCS collapses into 1) crossed with fault
// injection on/off and telemetry on/off.
func Matrix() []RunConfig {
	seen := map[int]bool{}
	var workers []int
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		if w < 1 {
			w = 1
		}
		if !seen[w] {
			seen[w] = true
			workers = append(workers, w)
		}
	}
	var out []RunConfig
	for _, w := range workers {
		for _, faults := range []bool{false, true} {
			for _, tel := range []bool{false, true} {
				out = append(out, RunConfig{Workers: w, Faults: faults, Telemetry: tel})
			}
		}
	}
	// Shard cells prove `sharded(T, N) ≡ unsharded(T)` byte-identically
	// against the serial baseline. Not a full cross-product — the shard
	// fan-out only touches the pure KB-coverage and repair-retrieval loops,
	// so {1 (above), 4, GOMAXPROCS} with telemetry (to also prove the
	// shard-pipeline merge does not perturb results) carries the invariant.
	seenShards := map[int]bool{1: true}
	for _, sh := range []int{4, runtime.GOMAXPROCS(0)} {
		if sh < 2 || seenShards[sh] {
			continue
		}
		seenShards[sh] = true
		out = append(out, RunConfig{Workers: 1, Shards: sh, Telemetry: true})
		out = append(out, RunConfig{Workers: 1, Shards: sh})
	}
	return out
}

// oracleTransport pins every delivered answer to the question's ground
// truth, with an optional inner transport (the fault injector) deciding
// whether the delivery happens at all. The matrix needs this: fault
// injection perturbs how often the crowd's rand stream is consulted, so
// worker answers must depend only on the question — not on the stream —
// for fault-on and fault-off runs to stay semantically identical.
type oracleTransport struct {
	inner crowd.Transport
}

func (o oracleTransport) Deliver(q crowd.Question, w crowd.Worker, _ func() int) crowd.Delivery {
	truth := func() int { return q.Truth }
	if o.inner != nil {
		return o.inner.Deliver(q, w, truth)
	}
	return crowd.Delivery{Answer: truth()}
}

// newOracleCrowd is the harness's stock crowd: five perfect workers whose
// answers come straight from each question's ground truth.
func newOracleCrowd() *crowd.Crowd {
	return crowd.Perfect(5, crowd.WithTransport(oracleTransport{}))
}

// Run cleans the scenario's dirty table under one configuration and
// returns the report plus the KB store the run enriched. Every run gets
// its own clone of the pristine KB — the whole KB, not just the store,
// because rdf.Store.Clone renumbers term IDs and the oracles must answer
// in the cleaned store's ID space.
func (s *Scenario) Run(cfg RunConfig) (*katara.Report, *rdf.Store, error) {
	cl, store := s.NewCleaner(cfg, false, nil)
	rep, err := cl.Clean(s.Dirty)
	return rep, store, err
}

// NewCleaner builds the configured cleaner over a fresh clone of the
// pristine KB. With incremental the cleaner keeps a session alive for
// Append/ApplyKBDelta; preAdds are merged into the clone before the cleaner
// sees it — the rebuild-from-merged-KB oracle the incremental KB-delta
// differential compares against.
func (s *Scenario) NewCleaner(cfg RunConfig, incremental bool, preAdds []katara.KBAddition) (*katara.Cleaner, *rdf.Store) {
	kb := s.KB.Clone()
	store := kb.Store
	for _, a := range preAdds {
		obj := rdf.IRI(a.Object)
		if a.Literal {
			obj = rdf.Lit(a.Object)
		}
		store.AddFact(rdf.IRI(a.Subject), rdf.IRI(a.Predicate), obj)
	}

	var transport crowd.Transport = oracleTransport{}
	if cfg.Faults {
		transport = oracleTransport{inner: crowd.NewFaultInjector(katara.FaultConfig{
			Seed:          s.Seed,
			AbandonRate:   0.12,
			TransientRate: 0.12,
		})}
	}
	cr := crowd.Perfect(5, crowd.WithTransport(transport))

	opts := katara.Options{
		Seed:    1,
		Workers: cfg.Workers,
		Shards:  cfg.Shards,
		// Small per-list caps keep the rank-join search space within
		// ExhaustiveTopK's refusal bound so invariant 1 stays checkable.
		MaxCandidates:    4,
		Telemetry:        cfg.Telemetry,
		ValidationOracle: workload.SpecOracle{Spec: s.Spec, KB: kb},
		FactOracle:       workload.WorldOracle{W: s.World, KB: kb},
	}
	if cfg.Faults {
		// Aggressive retry with microsecond backoff: resilience paths get
		// exercised without sleeping through the test budget, and six
		// attempts make a total question failure vanishingly unlikely.
		opts.Retry = katara.RetryPolicy{
			MaxAttempts: 6,
			BaseBackoff: 20 * time.Microsecond,
			MaxBackoff:  100 * time.Microsecond,
		}
	}
	if cfg.BudgetQuestions > 0 {
		opts.Budget = cfg.BudgetQuestions
		opts.Degrade = cfg.Degrade
	}
	if cfg.DedupOff {
		f := false
		opts.Dedup = &f
	}
	if cfg.Provenance {
		opts.Provenance = katara.NewProvenance()
	}
	opts.Incremental = incremental

	return katara.NewCleaner(store, cr, opts), store
}

// SeedResult summarizes one RunSeed for test logging.
type SeedResult struct {
	Seed      int64
	Kind      string
	KBName    string
	Rows      int
	Configs   int
	Erroneous int
	// ExhaustiveSkipped records that the rank-join oracle was skipped
	// because the candidate space exceeded ExhaustiveTopK's bound.
	ExhaustiveSkipped bool
	// NoPattern records that discovery found no pattern (all configs must
	// then agree on ErrNoPattern).
	NoPattern bool
	// KBCoveredRewrites counts repair changes that touch a cell whose type
	// the KB covered — measured, not asserted (see DESIGN.md §12 on why
	// type coverage alone is not evidence of cell correctness).
	KBCoveredRewrites int
	// Questions / QuestionsNoDedup are the crowd question counts of the
	// dedup-on baseline and the dedup-off differential run — the dedup
	// invariant requires Questions <= QuestionsNoDedup.
	Questions        int
	QuestionsNoDedup int
}

// RunSeed generates the scenario for seed and checks the full invariant
// catalog: the differential matrix (byte-identical canonical reports across
// worker counts × faults × telemetry, plus a repeated baseline run for
// determinism), the per-run invariants on the baseline report, the
// rank-join/exhaustive oracle, the repair differentials and the resolver
// cache differential, and a budget-capped degraded run.
func RunSeed(seed int64) (*SeedResult, error) {
	sc := Generate(seed)
	res := &SeedResult{Seed: seed, Kind: sc.Kind, KBName: sc.KBName, Rows: sc.Dirty.NumRows()}

	base := RunConfig{Workers: 1}
	rep, store, err := sc.Run(base)
	if err != nil {
		if !errors.Is(err, katara.ErrNoPattern) {
			return res, fmt.Errorf("baseline %s: %w", base, err)
		}
		res.NoPattern = true
	}

	// Determinism: the identical configuration twice, byte-identical.
	rep2, _, err2 := sc.Run(base)
	if err := sameOutcome(rep, err, rep2, err2); err != nil {
		return res, fmt.Errorf("baseline repeated run diverged: %w", err)
	}

	// Differential matrix: every cell must match the baseline.
	want := Canonical(rep)
	for _, cfg := range Matrix() {
		res.Configs++
		r, _, rerr := sc.Run(cfg)
		if err := sameOutcome(rep, err, r, rerr); err != nil {
			return res, fmt.Errorf("config %s diverged from baseline: %w", cfg, err)
		}
		if got := Canonical(r); !bytes.Equal(want, got) {
			return res, fmt.Errorf("config %s: canonical report differs from baseline\n%s", cfg, canonicalDiff(want, got))
		}
	}

	// Dedup differential: distinct-signature execution (the matrix above
	// runs with the dedup default ON) must change nothing but the question
	// count. Every dedup-off cell must match the baseline on
	// CanonicalSemantic — identical annotations, facts, repairs and
	// degradation — while asking at least as many questions as the deduped
	// baseline; and the dedup-off cells must agree with each other
	// byte-identically on the full Canonical, question count included.
	semWant := CanonicalSemantic(rep)
	var wantOff []byte
	for _, cfg := range []RunConfig{
		{Workers: 1, DedupOff: true},
		{Workers: 4, Faults: true, Telemetry: true, DedupOff: true},
		{Workers: 1, Shards: 4, Telemetry: true, DedupOff: true},
	} {
		res.Configs++
		r, _, rerr := sc.Run(cfg)
		if err := sameOutcome(rep, err, r, rerr); err != nil {
			return res, fmt.Errorf("config %s diverged from baseline: %w", cfg, err)
		}
		if got := CanonicalSemantic(r); !bytes.Equal(semWant, got) {
			return res, fmt.Errorf("config %s: semantic report differs from dedup-on baseline\n%s", cfg, canonicalDiff(semWant, got))
		}
		if full := Canonical(r); wantOff == nil {
			wantOff = full
		} else if !bytes.Equal(wantOff, full) {
			return res, fmt.Errorf("config %s: dedup-off cells disagree\n%s", cfg, canonicalDiff(wantOff, full))
		}
		if rep != nil && r != nil {
			if rep.QuestionsAsked > r.QuestionsAsked {
				return res, fmt.Errorf("config %s: dedup-on asked more questions (%d) than dedup-off (%d)",
					cfg, rep.QuestionsAsked, r.QuestionsAsked)
			}
			res.QuestionsNoDedup = r.QuestionsAsked
		}
	}
	if rep != nil {
		res.Questions = rep.QuestionsAsked
	}

	// Provenance differential: recording the decision lineage must not
	// perturb the pipeline — every recording cell matches the non-recording
	// baseline byte-identically on Canonical — and the lineage journals of a
	// serial and a sharded serial recording run must themselves be
	// byte-identical (the shard-order Child/Merge is deterministic). Pooled
	// workers race for crowd question IDs, so the workers=4 cell only
	// carries the lint + replay contracts, not journal byte-equality. Each
	// recording run's lineage must lint and replay: checkProvenance.
	var wantJournal []byte
	for _, cfg := range []RunConfig{
		{Workers: 1, Provenance: true},
		{Workers: 1, Shards: 4, Telemetry: true, Provenance: true},
		{Workers: 4, Faults: true, Provenance: true},
	} {
		res.Configs++
		r, _, rerr := sc.Run(cfg)
		if err := sameOutcome(rep, err, r, rerr); err != nil {
			return res, fmt.Errorf("config %s diverged from baseline: %w", cfg, err)
		}
		if got := Canonical(r); !bytes.Equal(want, got) {
			return res, fmt.Errorf("config %s: canonical report differs from baseline\n%s", cfg, canonicalDiff(want, got))
		}
		if r == nil {
			continue
		}
		journal, err := checkProvenance(sc, r)
		if err != nil {
			return res, fmt.Errorf("config %s: %w", cfg, err)
		}
		if cfg.Workers != 1 {
			continue
		}
		if wantJournal == nil {
			wantJournal = journal
		} else if !bytes.Equal(wantJournal, journal) {
			return res, fmt.Errorf("config %s: provenance journal differs from the serial recording run", cfg)
		}
	}

	// Crash/replay differential: a journaled job interrupted mid-run and
	// re-executed from replay — then served from a further restart without
	// re-running — must match the crash-free oracle byte-for-byte. Runs for
	// ErrNoPattern scenarios too: a failed job's document must also survive
	// replay unchanged.
	if err := checkJournalReplay(sc); err != nil {
		return res, fmt.Errorf("journal replay: %w", err)
	}

	if res.NoPattern {
		return res, nil
	}

	res.Erroneous = len(erroneousRows(rep))

	// Incremental differential: chained Clean+Append sessions across the
	// worker/shard/dedup configurations, ApplyKBDelta vs merged-KB rebuild,
	// and a mixed Clean→delta→Append chain — all must match the batch run
	// over the merged inputs on CanonicalSemantic (see checkIncremental).
	if err := checkIncremental(sc, res, rep); err != nil {
		return res, fmt.Errorf("incremental: %w", err)
	}

	// Per-run invariants on the baseline report.
	if err := checkAnnotationPartition(sc, rep, false, 0); err != nil {
		return res, fmt.Errorf("annotation partition: %w", err)
	}
	if err := checkRepairScope(sc, rep); err != nil {
		return res, fmt.Errorf("repair scope: %w", err)
	}
	res.KBCoveredRewrites = countKBCoveredRewrites(rep)

	// Repair retrieval invariants need the index the run used: rebuild it
	// on the enriched store with the validated pattern (BuildIndex is
	// deterministic, so this is the same index).
	if err := checkRepairRetrieval(sc, rep, store); err != nil {
		return res, fmt.Errorf("repair retrieval: %w", err)
	}

	// Discovery-level oracles on the pristine KB: rank-join vs exhaustive
	// enumeration, then resolver cache on ≡ off for both candidates and
	// annotations (stats and base candidates shared between the two).
	stats := kbstats.New(sc.KB.Store)
	cands := discovery.Generate(sc.Dirty, stats, discovery.Options{MaxCandidates: 4})
	skipped, err := checkRankJoin(cands)
	if err != nil {
		return res, fmt.Errorf("rank-join oracle: %w", err)
	}
	res.ExhaustiveSkipped = skipped
	if err := checkResolverDifferential(sc, stats, cands); err != nil {
		return res, fmt.Errorf("resolver differential: %w", err)
	}

	// Degraded run: cap the question budget at half of what the baseline
	// spent and require the MarkUnknown policy to hold its contract.
	if rep.QuestionsAsked > 1 {
		dcfg := RunConfig{
			Workers:         1,
			BudgetQuestions: rep.QuestionsAsked / 2,
			Degrade:         katara.DegradeMarkUnknown,
		}
		drep, _, derr := sc.Run(dcfg)
		if derr != nil && !errors.Is(derr, katara.ErrNoPattern) {
			return res, fmt.Errorf("degraded run %s: %w", dcfg, derr)
		}
		if derr == nil {
			if err := checkAnnotationPartition(sc, drep, true, katara.DegradeMarkUnknown); err != nil {
				return res, fmt.Errorf("degraded annotation partition: %w", err)
			}
			if err := checkRepairScope(sc, drep); err != nil {
				return res, fmt.Errorf("degraded repair scope: %w", err)
			}
		}
	}

	return res, nil
}

// sameOutcome compares two (report, error) pairs: both must fail the same
// way or both succeed.
func sameOutcome(a *katara.Report, aerr error, b *katara.Report, berr error) error {
	if (aerr == nil) != (berr == nil) {
		return fmt.Errorf("one run errored, the other did not: %v vs %v", aerr, berr)
	}
	if aerr != nil {
		if aerr.Error() != berr.Error() {
			return fmt.Errorf("different errors: %v vs %v", aerr, berr)
		}
		return nil
	}
	_ = a
	_ = b
	return nil
}

// erroneousRows returns the set of rows the report labelled Erroneous.
func erroneousRows(rep *katara.Report) map[int]bool {
	out := map[int]bool{}
	if rep == nil {
		return out
	}
	for _, t := range rep.Annotations {
		if t.Label == katara.Erroneous {
			out[t.Row] = true
		}
	}
	return out
}
