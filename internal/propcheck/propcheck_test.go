package propcheck

import (
	"bytes"
	"flag"
	"fmt"
	"reflect"
	"testing"
)

var (
	seedsFlag = flag.Int("seeds", 25, "number of generated scenario seeds TestProperties checks")
	seedFlag  = flag.Int64("seed", -1, "replay one scenario seed and nothing else (overrides -seeds)")
	firstSeed = flag.Int64("first-seed", 1, "first seed of the generated range")
)

// TestProperties is the harness entry point. Each seed runs the full
// invariant catalog of DESIGN.md §12: the worker × fault × telemetry
// differential matrix, the per-run invariants, the rank-join and repair
// retrieval oracles, the resolver differential and a degraded run.
//
// Replay a failure with:
//
//	go test ./internal/propcheck -run TestProperties -seed <n> -v
func TestProperties(t *testing.T) {
	if *seedFlag >= 0 {
		runSeed(t, *seedFlag)
		return
	}
	for i := 0; i < *seedsFlag; i++ {
		seed := *firstSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, seed)
		})
	}
}

func runSeed(t *testing.T, seed int64) {
	t.Helper()
	res, err := RunSeed(seed)
	if err != nil {
		t.Fatalf("seed %d (%s/%s, %d rows): %v\nreplay: go test ./internal/propcheck -run TestProperties -seed %d -v",
			seed, res.Kind, res.KBName, res.Rows, err, seed)
	}
	t.Logf("seed %d: %s/%s rows=%d configs=%d erroneous=%d kb-covered-rewrites=%d questions=%d/%d(no-dedup) exhaustive-skipped=%v no-pattern=%v",
		seed, res.Kind, res.KBName, res.Rows, res.Configs, res.Erroneous,
		res.KBCoveredRewrites, res.Questions, res.QuestionsNoDedup,
		res.ExhaustiveSkipped, res.NoPattern)
}

// TestGenerateDeterministic pins the generator itself: the same seed must
// build the same scenario, and neighbouring seeds must not.
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(7), Generate(7)
	if !reflect.DeepEqual(a.Dirty, b.Dirty) || !reflect.DeepEqual(a.Clean, b.Clean) {
		t.Fatal("Generate(7) built different tables on two calls")
	}
	if !reflect.DeepEqual(a.Injected, b.Injected) || a.Collisions != b.Collisions {
		t.Fatal("Generate(7) injected different corruption on two calls")
	}
	if c := Generate(8); reflect.DeepEqual(a.Dirty, c.Dirty) && a.Kind == c.Kind {
		t.Fatal("Generate(7) and Generate(8) built identical scenarios")
	}
}

// TestCanonicalStable pins the canonical encoding: two runs of the same
// configuration must encode byte-identically (the matrix comparisons in
// RunSeed rely on this being a total, stable projection).
func TestCanonicalStable(t *testing.T) {
	sc := Generate(3)
	rep1, _, err1 := sc.Run(RunConfig{Workers: 1})
	rep2, _, err2 := sc.Run(RunConfig{Workers: 1})
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("run errors diverged: %v vs %v", err1, err2)
	}
	if !bytes.Equal(Canonical(rep1), Canonical(rep2)) {
		t.Fatal("canonical encodings of identical runs differ")
	}
}

// TestMatrixShape pins the differential matrix: the worker axis carries 1
// and 4 (GOMAXPROCS deduplicated in) crossed with both boolean axes, plus
// two cells (telemetry on/off) per distinct shard count in
// {4, GOMAXPROCS} — the `sharded ≡ unsharded` invariant.
func TestMatrixShape(t *testing.T) {
	m := Matrix()
	workers := map[int]bool{}
	shards := map[int]bool{}
	for _, cfg := range m {
		workers[cfg.Workers] = true
		if cfg.Shards > 1 {
			shards[cfg.Shards] = true
		}
	}
	if !workers[1] || !workers[4] {
		t.Fatalf("matrix misses required worker counts: %+v", m)
	}
	if !shards[4] {
		t.Fatalf("matrix misses shard cells: %+v", m)
	}
	if len(m) != len(workers)*4+len(shards)*2 {
		t.Fatalf("matrix has %d cells for %d worker counts and %d shard counts",
			len(m), len(workers), len(shards))
	}
}
