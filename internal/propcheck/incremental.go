package propcheck

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"

	"katara"
	"katara/internal/rdf"
	"katara/internal/table"
)

// checkIncremental is the incremental ≡ batch differential: a session that
// Cleans a prefix and Appends the rest — in one or several increments, across
// worker/shard/dedup configurations — must produce the same cumulative report
// as one batch Clean of the merged table; and a session that absorbs a KB
// delta via ApplyKBDelta must match a rebuild from the merged KB. Reports are
// compared on CanonicalSemantic: replaying the validation memo legitimately
// asks fewer crowd questions than a batch MUVF pass, so question counts are
// the one sanctioned difference — annotations, facts, repairs and degradation
// must be identical. Intermediate increments may fail with ErrNoPattern (a
// prefix can lack the support the full table has); the chain must still
// converge to the batch result once all rows are in.
func checkIncremental(sc *Scenario, res *SeedResult, base *katara.Report) error {
	n := sc.Dirty.NumRows()
	if n < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(sc.Seed*1013 + 7))
	semWant := CanonicalSemantic(base)

	// Split sets: one random interior cut, plus a three-segment chain when
	// the table is big enough to hold two distinct cuts.
	mid := 1 + rng.Intn(n-1)
	splitSets := [][]int{{mid}}
	if n >= 3 {
		a := 1 + rng.Intn(n-2)
		b := a + 1 + rng.Intn(n-a-1)
		splitSets = append(splitSets, []int{a, b})
	}

	for _, cfg := range []RunConfig{
		{Workers: 1},
		{Workers: 4, Shards: 4, Telemetry: true},
		{Workers: 1, DedupOff: true},
	} {
		for _, splits := range splitSets {
			res.Configs++
			got, err := runIncrementalChain(sc, sc.Dirty, cfg, splits, nil, -1)
			if err != nil {
				return fmt.Errorf("append chain %s splits=%v: %w", cfg, splits, err)
			}
			if g := CanonicalSemantic(got); !bytes.Equal(semWant, g) {
				return fmt.Errorf("append chain %s splits=%v: cumulative report differs from batch\n%s",
					cfg, splits, canonicalDiff(semWant, g))
			}
		}
	}

	// KB-delta differential: ApplyKBDelta on a finished session vs a batch
	// run whose KB was merged before cleaning. One case per reconciliation
	// path: a fresh label on an existing subject (targeted re-rank), a label
	// on a brand-new subject matching a table cell (full re-clean), and a
	// non-label triple (full re-clean).
	cases := kbDeltaCases(sc, rng)
	for _, dc := range cases {
		res.Configs++
		cl, _ := sc.NewCleaner(RunConfig{Workers: 1}, true, nil)
		if _, err := cl.Clean(sc.Dirty); err != nil {
			return fmt.Errorf("kb-delta %s: session clean: %w", dc.name, err)
		}
		got, gerr := cl.ApplyKBDelta(dc.adds)
		ocl, _ := sc.NewCleaner(RunConfig{Workers: 1}, false, dc.adds)
		want, werr := ocl.Clean(sc.Dirty)
		if err := sameOutcome(want, werr, got, gerr); err != nil {
			return fmt.Errorf("kb-delta %s diverged from merged-KB rebuild: %w", dc.name, err)
		}
		if gerr != nil {
			continue
		}
		if w, g := CanonicalSemantic(want), CanonicalSemantic(got); !bytes.Equal(w, g) {
			return fmt.Errorf("kb-delta %s: report differs from merged-KB rebuild\n%s",
				dc.name, canonicalDiff(w, g))
		}
	}

	// Mixed chain: Clean(prefix) → ApplyKBDelta → Append(rest) must equal one
	// batch Clean of the full table under the merged KB.
	if len(cases) > 0 {
		res.Configs++
		adds := cases[0].adds
		got, err := runIncrementalChain(sc, sc.Dirty, RunConfig{Workers: 1}, []int{mid}, adds, 0)
		if err != nil {
			return fmt.Errorf("mixed chain split=%d: %w", mid, err)
		}
		ocl, _ := sc.NewCleaner(RunConfig{Workers: 1}, false, adds)
		want, werr := ocl.Clean(sc.Dirty)
		if werr != nil {
			return fmt.Errorf("mixed chain oracle: %w", werr)
		}
		if w, g := CanonicalSemantic(want), CanonicalSemantic(got); !bytes.Equal(w, g) {
			return fmt.Errorf("mixed chain split=%d: report differs from merged batch\n%s",
				mid, canonicalDiff(w, g))
		}
	}
	return nil
}

// runIncrementalChain cleans the first segment of dirty under cfg with an
// incremental session, then appends the remaining segments one increment at a
// time; splits are interior cut row indexes in ascending order. When adds is
// non-empty it is applied via ApplyKBDelta after segment addAfter. Segment
// failures other than ErrNoPattern abort; a final ErrNoPattern is returned to
// the caller. On success the cumulative report covers the whole table.
func runIncrementalChain(sc *Scenario, dirty *table.Table, cfg RunConfig, splits []int, adds []katara.KBAddition, addAfter int) (*katara.Report, error) {
	cl, _ := sc.NewCleaner(cfg, true, nil)
	cuts := append(append([]int{0}, splits...), dirty.NumRows())
	var rep *katara.Report
	var err error
	for i := 0; i+1 < len(cuts); i++ {
		seg := dirty.Rows[cuts[i]:cuts[i+1]]
		if i == 0 {
			prefix := table.New(dirty.Name, dirty.Columns...)
			for _, r := range seg {
				prefix.Append(r...)
			}
			rep, err = cl.Clean(prefix)
		} else {
			rep, err = cl.Append(seg)
		}
		if err != nil && !errors.Is(err, katara.ErrNoPattern) {
			return nil, fmt.Errorf("segment %d (rows %d:%d): %w", i, cuts[i], cuts[i+1], err)
		}
		if i == addAfter && len(adds) > 0 {
			rep, err = cl.ApplyKBDelta(adds)
			if err != nil && !errors.Is(err, katara.ErrNoPattern) {
				return nil, fmt.Errorf("kb delta after segment %d: %w", i, err)
			}
		}
	}
	return rep, err
}

// kbDeltaCase is one KB-delta differential: a named addition set exercising a
// specific ApplyKBDelta reconciliation path.
type kbDeltaCase struct {
	name string
	adds []katara.KBAddition
}

// kbDeltaCases builds the seed's KB-delta addition sets. Subjects for the
// existing-subject cases are drawn from the pristine KB's labelled resources;
// the new-subject case labels a fresh IRI with a value sampled from the dirty
// table so the delta can actually touch cleaning decisions.
func kbDeltaCases(sc *Scenario, rng *rand.Rand) []kbDeltaCase {
	st := sc.KB.Store
	var iris []string
	for _, id := range st.SubjectsWithPredicate(st.LabelID) {
		if t := st.Term(id); t.Kind == rdf.Resource {
			iris = append(iris, t.Value)
		}
	}
	if len(iris) == 0 {
		return nil
	}
	existing := iris[rng.Intn(len(iris))]
	other := iris[rng.Intn(len(iris))]
	cell := sc.Dirty.Rows[rng.Intn(len(sc.Dirty.Rows))][rng.Intn(len(sc.Dirty.Columns))]
	return []kbDeltaCase{
		{name: "label-existing-subject", adds: []katara.KBAddition{
			{Subject: existing, Predicate: rdf.IRILabel, Object: fmt.Sprintf("zz-delta-label-%d", sc.Seed), Literal: true},
		}},
		{name: "label-new-subject", adds: []katara.KBAddition{
			{Subject: fmt.Sprintf("x:pc-delta-%d", sc.Seed), Predicate: rdf.IRILabel, Object: cell, Literal: true},
		}},
		{name: "non-label-triple", adds: []katara.KBAddition{
			{Subject: existing, Predicate: "x:pc-delta-rel", Object: other},
		}},
	}
}
