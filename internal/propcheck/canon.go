package propcheck

import (
	"bytes"
	"fmt"
	"sort"

	"katara"
	"katara/internal/annotation"
	"katara/internal/repair"
)

// Canonical renders the semantic content of a Report as a stable byte
// string: the validated pattern, every tuple annotation (label, degraded
// flag, KB-coverage maps, per-tuple facts), the deduplicated new facts, the
// repair lists and the degradation report. Crowd accounting (assignments,
// retries, escalations) and Timings are deliberately excluded — they
// legitimately vary across the fault/telemetry axes while the cleaning
// outcome must not.
//
// Resource IDs appear numerically: every run clones the same pristine
// store, and Clone preserves IDs, so IDs are comparable across runs of one
// scenario.
func Canonical(rep *katara.Report) []byte {
	return canonical(rep, true)
}

// CanonicalSemantic is Canonical minus the question count. The dedup
// differential compares runs whose whole point is asking fewer questions
// (one per distinct signature instead of one per row), so question counts
// legitimately differ while every annotation, fact and repair must not.
func CanonicalSemantic(rep *katara.Report) []byte {
	return canonical(rep, false)
}

func canonical(rep *katara.Report, includeQuestions bool) []byte {
	var b bytes.Buffer
	if rep == nil {
		return b.Bytes()
	}
	if rep.Pattern != nil {
		fmt.Fprintf(&b, "pattern %s score %.9f\n", rep.Pattern.Key(), rep.Pattern.Score)
	}
	if includeQuestions {
		fmt.Fprintf(&b, "questions %d\n", rep.QuestionsAsked)
	}
	fmt.Fprintf(&b, "degraded fallback=%v tuples=%d repairs_skipped=%v\n",
		rep.Degraded.PatternFallback, rep.Degraded.Tuples, rep.Degraded.RepairsSkipped)

	for _, t := range rep.Annotations {
		fmt.Fprintf(&b, "row %d label %v degraded %v", t.Row, t.Label, t.Degraded)
		cols := make([]int, 0, len(t.NodeByKB))
		for c := range t.NodeByKB {
			cols = append(cols, c)
		}
		sort.Ints(cols)
		for _, c := range cols {
			fmt.Fprintf(&b, " n%d=%v", c, t.NodeByKB[c])
		}
		fmt.Fprintf(&b, " e%v p%v\n", t.EdgeByKB, t.PathByKB)
		for _, f := range t.NewFacts {
			writeFact(&b, "  fact ", f)
		}
	}

	for _, f := range rep.NewFacts {
		writeFact(&b, "newfact ", f)
	}

	rows := make([]int, 0, len(rep.Repairs))
	for r := range rep.Repairs {
		rows = append(rows, r)
	}
	sort.Ints(rows)
	for _, r := range rows {
		for i, rp := range rep.Repairs[r] {
			writeRepair(&b, r, i, rp)
		}
	}
	return b.Bytes()
}

func writeFact(b *bytes.Buffer, prefix string, f annotation.Fact) {
	fmt.Fprintf(b, "%stype=%v subj=%q t=%d p=%d path=%v obj=%q\n",
		prefix, f.IsType, f.Subject, f.Type, f.Prop, f.Path, f.Object)
}

func writeRepair(b *bytes.Buffer, row, rank int, rp repair.Repair) {
	graph := -1
	if rp.Graph != nil {
		graph = rp.Graph.ID
	}
	fmt.Fprintf(b, "repair row=%d rank=%d graph=%d cost=%.9f", row, rank, graph, rp.Cost)
	for _, ch := range rp.Changes {
		fmt.Fprintf(b, " [%d %q->%q]", ch.Col, ch.From, ch.To)
	}
	fmt.Fprintln(b)
}

// canonicalDiff renders the first line where two canonical encodings
// disagree, for failure messages.
func canonicalDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  baseline: %s\n  this run: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("lengths differ: baseline %d lines, this run %d lines", len(wl), len(gl))
}
