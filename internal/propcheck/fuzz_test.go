package propcheck

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"katara"
)

// fuzzScenarios caches Generate output per seed so the fuzzer's hot loop
// pays world/KB construction once per seed, not once per exec. Scenarios are
// read-only after Generate (every run clones the KB, and the chain runner
// copies table rows into the session), so sharing across fuzz workers is safe.
var fuzzScenarios sync.Map // int64 -> *Scenario

func fuzzScenario(seed int64) *Scenario {
	if sc, ok := fuzzScenarios.Load(seed); ok {
		return sc.(*Scenario)
	}
	sc, _ := fuzzScenarios.LoadOrStore(seed, Generate(seed))
	return sc.(*Scenario)
}

// FuzzAppendEquivalence fuzzes the incremental ≡ batch invariant directly:
// take a generated scenario, let the fuzzer rewrite table cells and pick the
// split point, then require that Clean(prefix) + Append(rest) matches one
// batch Clean of the same table on CanonicalSemantic — or fails with the
// same error. The cell rewrites push the table away from the generator's
// well-formed distributions (duplicated values across rows, junk tokens,
// emptied cells), hunting for states where the session's memo replay or
// repair re-ranking silently diverges from the batch pipeline.
func FuzzAppendEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(3), []byte{})
	f.Add(int64(2), uint16(0), []byte{0, 1, 5})
	f.Add(int64(5), uint16(9), []byte{7, 2, 200, 1, 0, 9})
	f.Add(int64(9), uint16(40), []byte{3, 3, 3, 250, 250, 250})
	f.Add(int64(12), uint16(17), []byte{0, 0, 0, 1, 1, 1, 2, 2, 2})
	f.Fuzz(func(t *testing.T, seed int64, split uint16, perturb []byte) {
		// Bound the seed range so the scenario cache stays small and the
		// fuzzer spends its budget on table mutations, not world generation.
		seed = ((seed % 16) + 16) % 16
		if seed == 0 {
			seed = 16
		}
		sc := fuzzScenario(seed)
		dirty := sc.Dirty.Clone()
		n, cols := dirty.NumRows(), dirty.NumCols()
		if n < 2 {
			t.Skip("single-row scenario")
		}
		// Each 3-byte chunk rewrites one cell: row, column, and either a value
		// copied from another row in the same column (collisions, conflicting
		// duplicates) or a synthetic junk token; byte 255 empties the cell.
		for i := 0; i+2 < len(perturb) && i < 3*24; i += 3 {
			r := int(perturb[i]) % n
			c := int(perturb[i+1]) % cols
			switch b := perturb[i+2]; {
			case b == 255:
				dirty.Rows[r][c] = ""
			case b < 128:
				dirty.Rows[r][c] = dirty.Rows[int(b)%n][c]
			default:
				dirty.Rows[r][c] = fmt.Sprintf("fz-%d", b)
			}
		}
		cut := 1 + int(split)%(n-1)

		bcl, _ := sc.NewCleaner(RunConfig{Workers: 1}, false, nil)
		want, werr := bcl.Clean(dirty)
		got, gerr := runIncrementalChain(sc, dirty, RunConfig{Workers: 1}, []int{cut}, nil, -1)
		if gerr != nil && !errors.Is(gerr, katara.ErrNoPattern) {
			t.Fatalf("incremental chain split=%d: %v", cut, gerr)
		}
		if err := sameOutcome(want, werr, got, gerr); err != nil {
			t.Fatalf("incremental vs batch outcome split=%d: %v", cut, err)
		}
		if werr != nil {
			return
		}
		if w, g := CanonicalSemantic(want), CanonicalSemantic(got); !bytes.Equal(w, g) {
			t.Fatalf("incremental report diverges from batch at split=%d\n%s", cut, canonicalDiff(w, g))
		}
	})
}
