// Package world generates the deterministic synthetic "real world" both the
// knowledge bases and the datasets are drawn from. It is the single source
// of ground truth: the KBs (package workload) publish *incomplete* views of
// it, the tables sample it (plus injected errors), and the simulated crowd
// answers from it.
//
// This replaces the paper's Wikipedia-derived corpora (Yago, DBpedia,
// WikiTables, WebTables, Person/Soccer/University): what the experiments
// measure — coverage, redundancy, ambiguity, hierarchy effects — are all
// explicit knobs here rather than accidents of a dump file.
package world

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Country is a nation with its capital, main language and continent.
type Country struct {
	Name      string
	Capital   string
	Language  string
	Continent string
}

// City belongs to a country; capitals are flagged.
type City struct {
	Name    string
	Country string
	Capital bool
}

// Person has a nationality, a birth city and a height.
type Person struct {
	Name      string
	Country   string
	BirthCity string
	Height    string // e.g. "1.78" — literal-valued in KBs
}

// Club is a soccer club in a city, playing in a league.
type Club struct {
	Name   string
	City   string
	League string
}

// Player is a person playing for a club.
type Player struct {
	Person
	Club string
}

// State is a US state with its capital city.
type State struct {
	Name    string
	Capital string
}

// University sits in a city within a state.
type University struct {
	Name  string
	City  string
	State string
}

// Film has a director (a person) and a production country.
type Film struct {
	Title    string
	Director string
	Country  string
	Year     string
}

// Book has an author and a publication year.
type Book struct {
	Title  string
	Author string
	Year   string
}

// Config scales the generated world.
type Config struct {
	Persons      int // non-player persons (default 400)
	Players      int // soccer players (default 200)
	Clubs        int // soccer clubs (default 40)
	Universities int // universities (default 120)
	Films        int // films (default 80)
	Books        int // books (default 80)
	ExtraCities  int // non-capital cities per country (default 2)
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	// Defaults size the world to the paper's datasets: 1625 unique soccer
	// players, 1357 unique universities (§7), plus a bounded pool of
	// non-player persons.
	def(&c.Persons, 600)
	def(&c.Players, 1700)
	def(&c.Clubs, 120)
	def(&c.Universities, 1400)
	def(&c.Films, 80)
	def(&c.Books, 80)
	def(&c.ExtraCities, 2)
	return c
}

// cityState records a college town's state.
type cityState struct{ city, state string }

// World is the complete ground truth.
type World struct {
	collegeTowns []cityState
	Countries    []Country
	Cities       []City
	Persons      []Person // includes players' Person records
	Players      []Player
	Clubs        []Club
	States       []State
	Universities []University
	Films        []Film
	Books        []Book

	countryByName map[string]*Country
	cityByName    map[string]*City
	personByName  map[string]*Person
	playerByName  map[string]*Player
	clubByName    map[string]*Club
	stateByName   map[string]*State
	univByName    map[string]*University
	filmByTitle   map[string]*Film
	bookByTitle   map[string]*Book
	stateOfCity   map[string]string // university cities
}

// uniqueName disambiguates repeated generated names with roman ordinals,
// the way real datasets disambiguate homonyms.
func uniqueName(base string, used map[string]bool) string {
	name := base
	for n := 2; used[name]; n++ {
		name = base + " " + romanNumeral(n)
	}
	used[name] = true
	return name
}

// New builds a world from seed. Same seed, same world.
func New(seed int64, cfg Config) *World {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	w := &World{}

	w.Countries = append([]Country(nil), baseCountries...)
	for _, c := range w.Countries {
		w.Cities = append(w.Cities, City{Name: c.Capital, Country: c.Name, Capital: true})
	}
	for _, c := range w.Countries {
		for i := 0; i < cfg.ExtraCities; i++ {
			w.Cities = append(w.Cities, City{
				Name:    cityName(c.Name, i, rng),
				Country: c.Name,
			})
		}
	}
	w.States = append([]State(nil), baseStates...)

	// Persons: unique full names with nationality, birth city and height.
	used := map[string]bool{}
	mkPerson := func() Person {
		var name string
		for {
			name = firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
			if !used[name] {
				break
			}
			name += " " + romanNumeral(rng.Intn(20)+2)
			if !used[name] {
				break
			}
		}
		used[name] = true
		c := w.Countries[rng.Intn(len(w.Countries))]
		cities := w.citiesOf(c.Name)
		return Person{
			Name:      name,
			Country:   c.Name,
			BirthCity: cities[rng.Intn(len(cities))].Name,
			Height:    fmt.Sprintf("1.%02d", 55+rng.Intn(45)),
		}
	}
	for i := 0; i < cfg.Persons; i++ {
		w.Persons = append(w.Persons, mkPerson())
	}

	// Clubs: each in a city, league named after the country. Names are
	// disambiguated with roman ordinals when a style/city pair repeats.
	usedClub := map[string]bool{}
	for i := 0; i < cfg.Clubs; i++ {
		city := w.Cities[rng.Intn(len(w.Cities))]
		name := uniqueName(clubName(city.Name, i), usedClub)
		w.Clubs = append(w.Clubs, Club{
			Name:   name,
			City:   city.Name,
			League: leagueOf(city.Country),
		})
	}
	for i := 0; i < cfg.Players; i++ {
		p := mkPerson()
		club := w.Clubs[rng.Intn(len(w.Clubs))]
		w.Players = append(w.Players, Player{Person: p, Club: club.Name})
		w.Persons = append(w.Persons, p)
	}

	// Universities: with unique names, mostly in their own college towns
	// (so university cities are near-unique, like the paper's 1357 US
	// universities) and occasionally in the state capital.
	usedUniv := map[string]bool{}
	usedTown := map[string]bool{}
	for _, s := range w.States {
		usedTown[s.Capital] = true
	}
	for i := 0; i < cfg.Universities; i++ {
		st := w.States[rng.Intn(len(w.States))]
		city := st.Capital
		if rng.Float64() < 0.75 {
			city = uniqueName(townName(st.Name, rng), usedTown)
			w.Cities = append(w.Cities, City{Name: city})
			w.collegeTowns = append(w.collegeTowns, cityState{city, st.Name})
		}
		name := uniqueName(universityName(st.Name, city, i), usedUniv)
		w.Universities = append(w.Universities, University{Name: name, City: city, State: st.Name})
	}

	// Films and books by some of the persons.
	for i := 0; i < cfg.Films; i++ {
		d := w.Persons[rng.Intn(len(w.Persons))]
		w.Films = append(w.Films, Film{
			Title:    filmTitle(rng, i),
			Director: d.Name,
			Country:  d.Country,
			Year:     strconv.Itoa(1950 + rng.Intn(65)),
		})
	}
	for i := 0; i < cfg.Books; i++ {
		a := w.Persons[rng.Intn(len(w.Persons))]
		w.Books = append(w.Books, Book{
			Title:  bookTitle(rng, i),
			Author: a.Name,
			Year:   strconv.Itoa(1900 + rng.Intn(115)),
		})
	}

	w.index()
	return w
}

func (w *World) index() {
	w.countryByName = map[string]*Country{}
	for i := range w.Countries {
		w.countryByName[w.Countries[i].Name] = &w.Countries[i]
	}
	w.cityByName = map[string]*City{}
	for i := range w.Cities {
		w.cityByName[w.Cities[i].Name] = &w.Cities[i]
	}
	w.personByName = map[string]*Person{}
	for i := range w.Persons {
		w.personByName[w.Persons[i].Name] = &w.Persons[i]
	}
	w.playerByName = map[string]*Player{}
	for i := range w.Players {
		w.playerByName[w.Players[i].Name] = &w.Players[i]
	}
	w.clubByName = map[string]*Club{}
	for i := range w.Clubs {
		w.clubByName[w.Clubs[i].Name] = &w.Clubs[i]
	}
	w.stateByName = map[string]*State{}
	w.stateOfCity = map[string]string{}
	for i := range w.States {
		w.stateByName[w.States[i].Name] = &w.States[i]
		w.stateOfCity[w.States[i].Capital] = w.States[i].Name
	}
	for _, ct := range w.collegeTowns {
		w.stateOfCity[ct.city] = ct.state
	}
	w.univByName = map[string]*University{}
	for i := range w.Universities {
		w.univByName[w.Universities[i].Name] = &w.Universities[i]
	}
	w.filmByTitle = map[string]*Film{}
	for i := range w.Films {
		w.filmByTitle[w.Films[i].Title] = &w.Films[i]
	}
	w.bookByTitle = map[string]*Book{}
	for i := range w.Books {
		w.bookByTitle[w.Books[i].Title] = &w.Books[i]
	}
}

func (w *World) citiesOf(country string) []City {
	var out []City
	for _, c := range w.Cities {
		if c.Country == country {
			out = append(out, c)
		}
	}
	return out
}

// Lookup helpers used by KB builders and oracles.

// CountryOf returns the country record by name.
func (w *World) CountryOf(name string) *Country { return w.countryByName[name] }

// CityOf returns the city record by name.
func (w *World) CityOf(name string) *City { return w.cityByName[name] }

// PersonOf returns the person record by name.
func (w *World) PersonOf(name string) *Person { return w.personByName[name] }

// PlayerOf returns the player record by name.
func (w *World) PlayerOf(name string) *Player { return w.playerByName[name] }

// ClubOf returns the club record by name.
func (w *World) ClubOf(name string) *Club { return w.clubByName[name] }

// StateOf returns the state record by name.
func (w *World) StateOf(name string) *State { return w.stateByName[name] }

// UniversityOf returns the university record by name.
func (w *World) UniversityOf(name string) *University { return w.univByName[name] }

// FilmOf returns the film record by title.
func (w *World) FilmOf(title string) *Film { return w.filmByTitle[title] }

// BookOf returns the book record by title.
func (w *World) BookOf(title string) *Book { return w.bookByTitle[title] }

// StateOfCity returns the state containing a (university) city.
func (w *World) StateOfCity(city string) string { return w.stateOfCity[city] }
