package world

import (
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(7, Config{})
	b := New(7, Config{})
	if len(a.Persons) != len(b.Persons) || len(a.Clubs) != len(b.Clubs) {
		t.Fatal("same seed produced different worlds")
	}
	for i := range a.Persons {
		if a.Persons[i] != b.Persons[i] {
			t.Fatalf("person %d differs: %+v vs %+v", i, a.Persons[i], b.Persons[i])
		}
	}
	c := New(8, Config{})
	if a.Persons[0] == c.Persons[0] && a.Persons[1] == c.Persons[1] {
		t.Fatal("different seeds produced identical persons (suspicious)")
	}
}

func TestConfigScaling(t *testing.T) {
	w := New(1, Config{Persons: 10, Players: 5, Clubs: 3, Universities: 4, Films: 2, Books: 2})
	if len(w.Players) != 5 || len(w.Clubs) != 3 || len(w.Universities) != 4 {
		t.Fatalf("scaling ignored: %d players %d clubs %d universities",
			len(w.Players), len(w.Clubs), len(w.Universities))
	}
	// Players' person records are included in Persons.
	if len(w.Persons) != 15 {
		t.Fatalf("persons = %d, want 10 + 5", len(w.Persons))
	}
}

func TestReferentialIntegrity(t *testing.T) {
	w := New(42, Config{})
	for _, p := range w.Persons {
		if w.CountryOf(p.Country) == nil {
			t.Fatalf("person %s has unknown country %s", p.Name, p.Country)
		}
		city := w.CityOf(p.BirthCity)
		if city == nil {
			t.Fatalf("person %s has unknown birth city %s", p.Name, p.BirthCity)
		}
		if city.Country != p.Country {
			t.Fatalf("person %s born in %s (%s) but national of %s",
				p.Name, city.Name, city.Country, p.Country)
		}
	}
	for _, pl := range w.Players {
		if w.ClubOf(pl.Club) == nil {
			t.Fatalf("player %s has unknown club %s", pl.Name, pl.Club)
		}
	}
	for _, u := range w.Universities {
		st := w.StateOf(u.State)
		if st == nil {
			t.Fatalf("university %s has unknown state: %+v", u.Name, u)
		}
		// The city is either the state capital or a college town of that
		// state; either way StateOfCity must agree.
		if w.StateOfCity(u.City) != u.State {
			t.Fatalf("university %s city/state mismatch: %+v", u.Name, u)
		}
	}
	// College towns are cities with no country and a known state.
	towns := 0
	for _, c := range w.Cities {
		if c.Country == "" {
			towns++
			if w.StateOfCity(c.Name) == "" {
				t.Fatalf("college town %s has no state", c.Name)
			}
			if w.TypeHolds(c.Name, TCapital) {
				t.Fatalf("college town %s must not be a capital", c.Name)
			}
			if !w.TypeHolds(c.Name, TCity) {
				t.Fatalf("college town %s should be a city", c.Name)
			}
		}
	}
	if towns == 0 {
		t.Fatal("expected some college towns")
	}
	for _, f := range w.Films {
		if w.PersonOf(f.Director) == nil {
			t.Fatalf("film %s has unknown director %s", f.Title, f.Director)
		}
	}
}

func TestUniquePersonNames(t *testing.T) {
	w := New(3, Config{Persons: 2000, Players: 500})
	seen := map[string]bool{}
	for _, p := range w.Persons {
		if seen[p.Name] {
			t.Fatalf("duplicate person name %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestTypeHoldsHierarchy(t *testing.T) {
	w := New(5, Config{})
	if !w.TypeHolds("Italy", TCountry) {
		t.Fatal("Italy should be a country")
	}
	if !w.TypeHolds("Italy", TLocation) {
		t.Fatal("Italy should be a location via hierarchy")
	}
	if !w.TypeHolds("Rome", TCapital) || !w.TypeHolds("Rome", TCity) {
		t.Fatal("Rome should be capital and city")
	}
	if w.TypeHolds("Rome", TCountry) {
		t.Fatal("Rome is not a country")
	}
	if w.TypeHolds("NotAThing", TCity) {
		t.Fatal("unknown value should not type-check")
	}
	pl := w.Players[0]
	if !w.TypeHolds(pl.Name, TPlayer) || !w.TypeHolds(pl.Name, TPerson) {
		t.Fatal("players are persons")
	}
}

func TestRelHolds(t *testing.T) {
	w := New(5, Config{})
	if !w.RelHolds("Italy", RHasCapital, "Rome") {
		t.Fatal("Italy hasCapital Rome")
	}
	if w.RelHolds("Italy", RHasCapital, "Madrid") {
		t.Fatal("Italy hasCapital Madrid must be false")
	}
	if !w.RelHolds("Italy", RLanguage, "Italian") {
		t.Fatal("Italy officialLanguage Italian")
	}
	p := w.Persons[0]
	if !w.RelHolds(p.Name, RNationality, p.Country) {
		t.Fatal("nationality fact broken")
	}
	if !w.RelHolds(p.Name, RHeight, p.Height) {
		t.Fatal("height fact broken")
	}
	pl := w.Players[0]
	if !w.RelHolds(pl.Name, RPlaysFor, pl.Club) {
		t.Fatal("playsFor fact broken")
	}
	u := w.Universities[0]
	if !w.RelHolds(u.Name, RUnivState, u.State) || !w.RelHolds(u.Name, RUnivCity, u.City) {
		t.Fatal("university facts broken")
	}
	if !w.RelHolds(u.City, RCityState, u.State) {
		t.Fatal("cityState fact broken")
	}
	if w.RelHolds("x", "no-such-rel", "y") {
		t.Fatal("unknown relationship must be false")
	}
}

func TestLanguageAndLeagueTypes(t *testing.T) {
	w := New(5, Config{})
	if !w.TypeHolds("Italian", TLanguage) {
		t.Fatal("Italian is a language")
	}
	if !w.TypeHolds(w.Clubs[0].League, TLeague) {
		t.Fatal("league type missing")
	}
	if !w.TypeHolds("Europe", TContinent) {
		t.Fatal("Europe is a continent")
	}
}

func TestFilmsAndBooks(t *testing.T) {
	w := New(5, Config{})
	f := w.Films[0]
	if !w.TypeHolds(f.Title, TFilm) || !w.RelHolds(f.Title, RDirector, f.Director) ||
		!w.RelHolds(f.Title, RFilmYear, f.Year) {
		t.Fatal("film oracle broken")
	}
	b := w.Books[0]
	if !w.TypeHolds(b.Title, TBook) || !w.RelHolds(b.Title, RAuthor, b.Author) {
		t.Fatal("book oracle broken")
	}
}
