package world

import "testing"

func TestSuccessors(t *testing.T) {
	w := New(5, Config{})
	c := w.Countries[0]
	if got := w.Successors(c.Name, RHasCapital); len(got) != 1 || got[0] != c.Capital {
		t.Fatalf("Successors(%s, hasCapital) = %v", c.Name, got)
	}
	if got := w.Successors(c.Name, RLanguage); len(got) != 1 || got[0] != c.Language {
		t.Fatalf("Successors language = %v", got)
	}
	p := w.Players[0]
	if got := w.Successors(p.Name, RPlaysFor); len(got) != 1 || got[0] != p.Club {
		t.Fatalf("Successors playsFor = %v", got)
	}
	cl := w.ClubOf(p.Club)
	if got := w.Successors(cl.Name, RClubCity); len(got) != 1 || got[0] != cl.City {
		t.Fatalf("Successors clubCity = %v", got)
	}
	u := w.Universities[0]
	if got := w.Successors(u.Name, RUnivState); len(got) != 1 || got[0] != u.State {
		t.Fatalf("Successors univState = %v", got)
	}
	f := w.Films[0]
	if got := w.Successors(f.Title, RDirector); len(got) != 1 || got[0] != f.Director {
		t.Fatalf("Successors director = %v", got)
	}
	b := w.Books[0]
	if got := w.Successors(b.Title, RAuthor); len(got) != 1 || got[0] != b.Author {
		t.Fatalf("Successors author = %v", got)
	}
	if got := w.Successors("nobody", RHasCapital); got != nil {
		t.Fatalf("unknown subject = %v", got)
	}
	if got := w.Successors(c.Name, "no-such-rel"); got != nil {
		t.Fatalf("unknown relation = %v", got)
	}
	// cityCountry: a country city's country.
	for _, city := range w.Cities {
		if city.Country != "" {
			if got := w.Successors(city.Name, "cityCountry"); len(got) != 1 || got[0] != city.Country {
				t.Fatalf("cityCountry(%s) = %v", city.Name, got)
			}
			break
		}
	}
}

func TestPathHoldsChains(t *testing.T) {
	w := New(5, Config{})
	// player -playsFor-> club -clubCity-> city.
	p := w.Players[0]
	cl := w.ClubOf(p.Club)
	if !w.PathHolds(p.Name, []string{RPlaysFor, RClubCity}, cl.City) {
		t.Fatal("player→club→city chain should hold")
	}
	if w.PathHolds(p.Name, []string{RPlaysFor, RClubCity}, "Atlantis") {
		t.Fatal("chain to wrong city must fail")
	}
	// person -bornIn-> city -cityCountry-> country equals nationality
	// (the §9 example) — birth cities are in the person's own country.
	per := w.Persons[0]
	if !w.PathHolds(per.Name, []string{RBornIn, "cityCountry"}, per.Country) {
		t.Fatal("bornIn∘cityCountry chain should reach the nationality")
	}
	// Single hop degenerates to RelHolds.
	if !w.PathHolds(per.Name, []string{RNationality}, per.Country) {
		t.Fatal("single-hop path broken")
	}
	// Dead ends fail cleanly.
	if w.PathHolds("nobody", []string{RNationality, RHasCapital}, "x") {
		t.Fatal("unknown subject chain must fail")
	}
	// university -univCity-> city -cityState-> state equals univState.
	u := w.Universities[0]
	if !w.PathHolds(u.Name, []string{RUnivCity, RCityState}, u.State) {
		t.Fatal("univCity∘cityState chain should reach the state")
	}
}

func TestRelHoldsLiteralYears(t *testing.T) {
	w := New(5, Config{})
	f := w.Films[0]
	if !w.RelHolds(f.Title, RFilmYear, f.Year) || w.RelHolds(f.Title, RFilmYear, "1800") {
		t.Fatal("film year oracle broken")
	}
	b := w.Books[0]
	if !w.RelHolds(b.Title, RBookYear, b.Year) {
		t.Fatal("book year oracle broken")
	}
	if !w.RelHolds(b.Title, RAuthor, b.Author) || w.RelHolds(b.Title, RAuthor, "nobody") {
		t.Fatal("author oracle broken")
	}
}

func TestUniqueNameDisambiguation(t *testing.T) {
	used := map[string]bool{}
	a := uniqueName("University of Texas", used)
	b := uniqueName("University of Texas", used)
	c := uniqueName("University of Texas", used)
	if a != "University of Texas" || b == a || c == b || c == a {
		t.Fatalf("disambiguation broken: %q %q %q", a, b, c)
	}
	if b != "University of Texas II" || c != "University of Texas III" {
		t.Fatalf("roman ordinals expected: %q %q", b, c)
	}
}

func TestUniversityNameVariety(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 2*len(universityStyles); i++ {
		seen[universityName("Ohio", "Columbus", i)] = true
	}
	if len(seen) < len(universityStyles) {
		t.Fatalf("only %d distinct base names", len(seen))
	}
}
