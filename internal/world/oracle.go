package world

// Semantic vocabulary: the names shared by the world, the KB builders and
// the dataset specs. The oracle answers membership and fact questions in
// this vocabulary; KBs map their IRIs back to it.

// Type names.
const (
	TPerson     = "person"
	TPlayer     = "player"
	TCountry    = "country"
	TCity       = "city"
	TCapital    = "capital"
	TLocation   = "location"
	TLanguage   = "language"
	TContinent  = "continent"
	TClub       = "club"
	TLeague     = "league"
	TState      = "state"
	TUniversity = "university"
	TFilm       = "film"
	TBook       = "book"
)

// Relationship names (directed, subject first).
const (
	RHasCapital  = "hasCapital"       // country -> capital
	RLanguage    = "officialLanguage" // country -> language
	RContinent   = "onContinent"      // country -> continent
	RNationality = "nationality"      // person -> country
	RBornIn      = "bornIn"           // person -> city
	RHeight      = "height"           // person -> literal
	RPlaysFor    = "playsFor"         // player -> club
	RClubCity    = "clubCity"         // club -> city
	RInLeague    = "inLeague"         // club -> league
	RUnivCity    = "univCity"         // university -> city
	RUnivState   = "univState"        // university -> state
	RCityState   = "cityState"        // city -> state (state capitals)
	RDirector    = "director"         // film -> person
	RAuthor      = "author"           // book -> person
	RFilmYear    = "filmYear"         // film -> literal
	RBookYear    = "bookYear"         // book -> literal
)

// TypeHierarchy maps each semantic type to its parent ("" for roots). This
// is the *real* hierarchy; KB builders materialise (noisy supersets of) it.
var TypeHierarchy = map[string]string{
	TPlayer:     TPerson,
	TCapital:    TCity,
	TCity:       TLocation,
	TCountry:    TLocation,
	TState:      TLocation,
	TPerson:     "",
	TLocation:   "",
	TLanguage:   "",
	TContinent:  "",
	TClub:       "",
	TLeague:     "",
	TUniversity: "",
	TFilm:       "",
	TBook:       "",
}

// Known reports whether value names any entity in the world.
func (w *World) Known(value string) bool {
	return len(w.directTypes(value)) > 0
}

// TypeHolds reports whether value is truly an instance of typeName,
// honouring the semantic hierarchy (a capital is a city is a location).
func (w *World) TypeHolds(value, typeName string) bool {
	for _, direct := range w.directTypes(value) {
		t := direct
		for t != "" {
			if t == typeName {
				return true
			}
			t = TypeHierarchy[t]
		}
	}
	return false
}

func (w *World) directTypes(value string) []string {
	var out []string
	if w.countryByName[value] != nil {
		out = append(out, TCountry)
	}
	if c := w.cityByName[value]; c != nil {
		if c.Capital {
			out = append(out, TCapital)
		} else {
			out = append(out, TCity)
		}
	}
	if w.playerByName[value] != nil {
		out = append(out, TPlayer)
	} else if w.personByName[value] != nil {
		out = append(out, TPerson)
	}
	if w.clubByName[value] != nil {
		out = append(out, TClub)
	}
	if w.stateByName[value] != nil {
		out = append(out, TState)
	}
	if w.cityByName[value] == nil && w.stateOfCity[value] != "" {
		out = append(out, TCapital) // US state capitals
	}
	if w.univByName[value] != nil {
		out = append(out, TUniversity)
	}
	if w.filmByTitle[value] != nil {
		out = append(out, TFilm)
	}
	if w.bookByTitle[value] != nil {
		out = append(out, TBook)
	}
	for _, c := range w.Countries {
		if c.Language == value {
			out = append(out, TLanguage)
			break
		}
	}
	for _, c := range w.Countries {
		if c.Continent == value {
			out = append(out, TContinent)
			break
		}
	}
	for _, c := range w.Clubs {
		if c.League == value {
			out = append(out, TLeague)
			break
		}
	}
	return out
}

// Successors returns the objects truly related to subj by relName — the
// fact graph view of the world used for multi-hop (path) verification.
func (w *World) Successors(subj, relName string) []string {
	switch relName {
	case RHasCapital:
		if c := w.countryByName[subj]; c != nil {
			return []string{c.Capital}
		}
	case RLanguage:
		if c := w.countryByName[subj]; c != nil {
			return []string{c.Language}
		}
	case RContinent:
		if c := w.countryByName[subj]; c != nil {
			return []string{c.Continent}
		}
	case RNationality:
		if p := w.personByName[subj]; p != nil {
			return []string{p.Country}
		}
	case RBornIn:
		if p := w.personByName[subj]; p != nil {
			return []string{p.BirthCity}
		}
	case RHeight:
		if p := w.personByName[subj]; p != nil {
			return []string{p.Height}
		}
	case RPlaysFor:
		if p := w.playerByName[subj]; p != nil {
			return []string{p.Club}
		}
	case RClubCity:
		if c := w.clubByName[subj]; c != nil {
			return []string{c.City}
		}
	case RInLeague:
		if c := w.clubByName[subj]; c != nil {
			return []string{c.League}
		}
	case RUnivCity:
		if u := w.univByName[subj]; u != nil {
			return []string{u.City}
		}
	case RUnivState:
		if u := w.univByName[subj]; u != nil {
			return []string{u.State}
		}
	case RCityState:
		if st := w.stateOfCity[subj]; st != "" {
			return []string{st}
		}
	case RDirector:
		if f := w.filmByTitle[subj]; f != nil {
			return []string{f.Director}
		}
	case RAuthor:
		if b := w.bookByTitle[subj]; b != nil {
			return []string{b.Author}
		}
	case RFilmYear:
		if f := w.filmByTitle[subj]; f != nil {
			return []string{f.Year}
		}
	case RBookYear:
		if b := w.bookByTitle[subj]; b != nil {
			return []string{b.Year}
		}
	// "cityCountry" is not a first-class relation of any KB, but paths
	// need it: a city's country.
	case "cityCountry":
		if c := w.cityByName[subj]; c != nil && c.Country != "" {
			return []string{c.Country}
		}
	}
	return nil
}

// PathHolds reports whether a chain of relations truly links subj to obj.
func (w *World) PathHolds(subj string, rels []string, obj string) bool {
	frontier := map[string]bool{subj: true}
	for _, rel := range rels {
		next := map[string]bool{}
		for v := range frontier {
			for _, o := range w.Successors(v, rel) {
				next[o] = true
			}
		}
		if len(next) == 0 {
			return false
		}
		frontier = next
	}
	return frontier[obj]
}

// RelHolds reports whether relName truly relates subj to obj.
func (w *World) RelHolds(subj, relName, obj string) bool {
	switch relName {
	case RHasCapital:
		c := w.countryByName[subj]
		return c != nil && c.Capital == obj
	case RLanguage:
		c := w.countryByName[subj]
		return c != nil && c.Language == obj
	case RContinent:
		c := w.countryByName[subj]
		return c != nil && c.Continent == obj
	case RNationality:
		p := w.personByName[subj]
		return p != nil && p.Country == obj
	case RBornIn:
		p := w.personByName[subj]
		return p != nil && p.BirthCity == obj
	case RHeight:
		p := w.personByName[subj]
		return p != nil && p.Height == obj
	case RPlaysFor:
		p := w.playerByName[subj]
		return p != nil && p.Club == obj
	case RClubCity:
		c := w.clubByName[subj]
		return c != nil && c.City == obj
	case RInLeague:
		c := w.clubByName[subj]
		return c != nil && c.League == obj
	case RUnivCity:
		u := w.univByName[subj]
		return u != nil && u.City == obj
	case RUnivState:
		u := w.univByName[subj]
		return u != nil && u.State == obj
	case RCityState:
		return w.stateOfCity[subj] == obj && obj != ""
	case RDirector:
		f := w.filmByTitle[subj]
		return f != nil && f.Director == obj
	case RAuthor:
		b := w.bookByTitle[subj]
		return b != nil && b.Author == obj
	case RFilmYear:
		f := w.filmByTitle[subj]
		return f != nil && f.Year == obj
	case RBookYear:
		b := w.bookByTitle[subj]
		return b != nil && b.Year == obj
	default:
		return false
	}
}
