package world

import (
	"fmt"
	"math/rand"
)

// Seed vocabularies. Real country/capital/state data keeps the generated
// tables recognisable (and the crowd prompts sensible); names and titles
// are synthesised from pools.

var baseCountries = []Country{
	{"Italy", "Rome", "Italian", "Europe"},
	{"Spain", "Madrid", "Spanish", "Europe"},
	{"France", "Paris", "French", "Europe"},
	{"Germany", "Berlin", "German", "Europe"},
	{"Portugal", "Lisbon", "Portuguese", "Europe"},
	{"Austria", "Vienna", "German", "Europe"},
	{"Greece", "Athens", "Greek", "Europe"},
	{"Poland", "Warsaw", "Polish", "Europe"},
	{"Netherlands", "Amsterdam", "Dutch", "Europe"},
	{"Belgium", "Brussels", "Dutch", "Europe"},
	{"Sweden", "Stockholm", "Swedish", "Europe"},
	{"Norway", "Oslo", "Norwegian", "Europe"},
	{"Denmark", "Copenhagen", "Danish", "Europe"},
	{"Finland", "Helsinki", "Finnish", "Europe"},
	{"Ireland", "Dublin", "English", "Europe"},
	{"Switzerland", "Bern", "German", "Europe"},
	{"Czechia", "Prague", "Czech", "Europe"},
	{"Hungary", "Budapest", "Hungarian", "Europe"},
	{"Romania", "Bucharest", "Romanian", "Europe"},
	{"Croatia", "Zagreb", "Croatian", "Europe"},
	{"Japan", "Tokyo", "Japanese", "Asia"},
	{"China", "Beijing", "Chinese", "Asia"},
	{"India", "New Delhi", "Hindi", "Asia"},
	{"South Korea", "Seoul", "Korean", "Asia"},
	{"Thailand", "Bangkok", "Thai", "Asia"},
	{"Vietnam", "Hanoi", "Vietnamese", "Asia"},
	{"Indonesia", "Jakarta", "Indonesian", "Asia"},
	{"Turkey", "Ankara", "Turkish", "Asia"},
	{"Israel", "Jerusalem", "Hebrew", "Asia"},
	{"Iran", "Tehran", "Persian", "Asia"},
	{"Egypt", "Cairo", "Arabic", "Africa"},
	{"Nigeria", "Abuja", "English", "Africa"},
	{"Kenya", "Nairobi", "Swahili", "Africa"},
	{"South Africa", "Pretoria", "Afrikaans", "Africa"},
	{"Morocco", "Rabat", "Arabic", "Africa"},
	{"Ghana", "Accra", "English", "Africa"},
	{"Ethiopia", "Addis Ababa", "Amharic", "Africa"},
	{"Senegal", "Dakar", "French", "Africa"},
	{"Brazil", "Brasilia", "Portuguese", "South America"},
	{"Argentina", "Buenos Aires", "Spanish", "South America"},
	{"Chile", "Santiago", "Spanish", "South America"},
	{"Peru", "Lima", "Spanish", "South America"},
	{"Colombia", "Bogota", "Spanish", "South America"},
	{"Uruguay", "Montevideo", "Spanish", "South America"},
	{"Canada", "Ottawa", "English", "North America"},
	{"Mexico", "Mexico City", "Spanish", "North America"},
	{"Cuba", "Havana", "Spanish", "North America"},
	{"Australia", "Canberra", "English", "Oceania"},
	{"New Zealand", "Wellington", "English", "Oceania"},
	{"Fiji", "Suva", "Fijian", "Oceania"},
}

var baseStates = []State{
	{"Alabama", "Montgomery"},
	{"Arizona", "Phoenix"},
	{"California", "Sacramento"},
	{"Colorado", "Denver"},
	{"Florida", "Tallahassee"},
	{"Georgia", "Atlanta"},
	{"Illinois", "Springfield"},
	{"Indiana", "Indianapolis"},
	{"Iowa", "Des Moines"},
	{"Kansas", "Topeka"},
	{"Kentucky", "Frankfort"},
	{"Louisiana", "Baton Rouge"},
	{"Massachusetts", "Boston"},
	{"Michigan", "Lansing"},
	{"Minnesota", "Saint Paul"},
	{"Missouri", "Jefferson City"},
	{"Nebraska", "Lincoln"},
	{"Nevada", "Carson City"},
	{"New York", "Albany"},
	{"North Carolina", "Raleigh"},
	{"Ohio", "Columbus"},
	{"Oregon", "Salem"},
	{"Pennsylvania", "Harrisburg"},
	{"Tennessee", "Nashville"},
	{"Texas", "Austin"},
	{"Utah", "Salt Lake City"},
	{"Virginia", "Richmond"},
	{"Washington", "Olympia"},
	{"Wisconsin", "Madison"},
	{"Wyoming", "Cheyenne"},
}

var firstNames = []string{
	"Andrea", "Marco", "Luca", "Giorgio", "Paolo", "Carlos", "Diego", "Javier",
	"Miguel", "Rafael", "Pierre", "Michel", "Antoine", "Hans", "Karl", "Stefan",
	"Jan", "Pieter", "Erik", "Lars", "Henrik", "Aki", "Sean", "Liam", "Tomas",
	"Milan", "Andrzej", "Ivan", "Takeshi", "Hiro", "Kenji", "Wei", "Jin", "Arjun",
	"Ravi", "Omar", "Ali", "Kwame", "Sipho", "Thabo", "Juan", "Pedro", "Mateo",
	"Bruno", "Felipe", "Jack", "Noah", "Ethan", "Oliver", "Mia",
}

var lastNames = []string{
	"Rossi", "Bianchi", "Ferrari", "Romano", "Colombo", "Garcia", "Fernandez",
	"Lopez", "Martinez", "Sanchez", "Dubois", "Moreau", "Laurent", "Muller",
	"Schmidt", "Weber", "Wagner", "Becker", "Jansen", "Visser", "Andersson",
	"Johansson", "Nilsson", "Hansen", "Korhonen", "Murphy", "Kelly", "Novak",
	"Horvat", "Kowalski", "Nowak", "Ivanov", "Tanaka", "Suzuki", "Yamamoto",
	"Watanabe", "Chen", "Wang", "Singh", "Patel", "Hassan", "Mensah", "Dlamini",
	"Nkosi", "Silva", "Santos", "Oliveira", "Pereira", "Smith", "Brown", "Wilson",
	"Taylor", "Walker", "Moyo", "Banda", "Okafor", "Diallo", "Keita", "Traore",
	"Demir",
}

var cityPrefixes = []string{"Port", "San", "New", "Old", "East", "West", "North", "South", "Lake", "Mount"}
var citySuffixes = []string{"ville", "burg", "ton", " Falls", " Harbor", " Springs", " Heights", "field", "dale", "mouth"}

func cityName(country string, i int, rng *rand.Rand) string {
	p := cityPrefixes[rng.Intn(len(cityPrefixes))]
	s := citySuffixes[rng.Intn(len(citySuffixes))]
	stem := country
	if len(stem) > 6 {
		stem = stem[:6]
	}
	return fmt.Sprintf("%s %s%s", p, stem, s)
}

var townSuffixes = []string{" Grove", " Creek", " Ridge", " Plains", " Junction", " Park", " Hollow", " Bluff"}

// townName generates a college-town name stemmed on the state.
func townName(state string, rng *rand.Rand) string {
	stem := state
	if i := len(stem); i > 7 {
		stem = stem[:7]
	}
	return stem + townSuffixes[rng.Intn(len(townSuffixes))]
}

func clubName(city string, i int) string {
	styles := []string{"FC %s", "%s United", "Real %s", "Sporting %s", "%s Rovers", "Athletic %s"}
	return fmt.Sprintf(styles[i%len(styles)], city)
}

func leagueOf(country string) string { return country + " Premier League" }

var universityStyles = []string{
	"University of %s",
	"%s State University",
	"%s Institute of Technology",
	"%s A&M University",
	"Central %s College",
	"%s Polytechnic University",
	"Northern %s University",
	"%s Metropolitan College",
}

func universityName(state, city string, i int) string {
	style := universityStyles[i%len(universityStyles)]
	base := state
	if i%(2*len(universityStyles)) >= len(universityStyles) {
		base = city
	}
	return fmt.Sprintf(style, base)
}

var filmNouns = []string{"Shadow", "River", "Garden", "Winter", "Summer", "Voyage", "Silence", "Echo", "Mirror", "Storm"}
var filmPlaces = []string{"Rome", "Tokyo", "Cairo", "Lima", "Oslo", "Prague", "Kyoto", "Havana", "Dakar", "Vienna"}

func filmTitle(rng *rand.Rand, i int) string {
	return fmt.Sprintf("%s of %s (film %d)", filmNouns[rng.Intn(len(filmNouns))],
		filmPlaces[rng.Intn(len(filmPlaces))], i)
}

var bookAdjectives = []string{"Quiet", "Burning", "Hidden", "Distant", "Broken", "Golden", "Endless", "Forgotten", "Silent", "Last"}
var bookNouns = []string{"Empire", "Journey", "Letter", "Harvest", "Horizon", "Archive", "Covenant", "Garden", "Winter", "Map"}

func bookTitle(rng *rand.Rand, i int) string {
	return fmt.Sprintf("A %s %s, Volume %d", bookAdjectives[rng.Intn(len(bookAdjectives))],
		bookNouns[rng.Intn(len(bookNouns))], i)
}

func romanNumeral(n int) string {
	vals := []struct {
		v int
		s string
	}{{10, "X"}, {9, "IX"}, {5, "V"}, {4, "IV"}, {1, "I"}}
	out := ""
	for _, p := range vals {
		for n >= p.v {
			out += p.s
			n -= p.v
		}
	}
	return out
}
