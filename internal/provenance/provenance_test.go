package provenance

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleRecorder fabricates a fully populated recorder covering every
// record type and every verdict class: a KB-full tuple, a crowd-validated
// tuple, an erroneous tuple with a repair, and a degraded Unknown tuple —
// over a 6-row table deduped to 4 decision units (rows 0/4 and 1/5 share
// signatures).
func sampleRecorder() *Recorder {
	r := NewRecorder()
	r.SetRowUnits([]int{0, 1, 2, 3, 0, 1}, true)

	r.RecordPattern("type(0)=city,type(1)=country,rel(0,1)=capitalOf", 2.931, true)
	r.RecordPattern("type(0)=city,type(1)=country", 2.114, false)
	r.RecordValidationStep("type(0)", 1.585, 3, "city", false)
	r.RecordValidationStep("rel(0,1)", 0.918, 2, "capitalOf", false)

	// Unit 0: fully matched in the KB.
	r.BeginTuple(0)
	r.RecordCheck(0, "node", "kb", []int{0}, `"Rome" is a city`, 0, true)
	r.RecordCheck(0, "edge", "kb", []int{0, 1}, `"Rome" capitalOf "Italy"`, 0, true)
	r.RecordVerdict(0, "validated-by-kb", false, true)

	// Unit 1: crowd confirmed the missing edge (3 votes, one retry).
	q1 := r.StartQuestion("bool", `Does "Paris" capitalOf "France"?`, []string{"yes", "no"})
	r.AddVote(q1, 0, 0, 1)
	r.AddVote(q1, 1, 0, 1)
	r.AddVote(q1, 2, 1, 1)
	r.FinishQuestion(q1, 0, 1, 0, 0, 0, "")
	r.BeginTuple(1)
	r.RecordCheck(1, "node", "kb", []int{0}, `"Paris" is a city`, 0, true)
	r.RecordCheck(1, "edge", "crowd", []int{0, 1}, `Does "Paris" capitalOf "France"?`, q1, true)
	r.RecordVerdict(1, "validated-by-kb-and-crowd", false, false)

	// Unit 2: the crowd rejected the edge — erroneous, repaired.
	q2 := r.StartQuestion("bool", `Does "Rome" capitalOf "France"?`, []string{"yes", "no"})
	r.AddVote(q2, 0, 1, 1)
	r.AddVote(q2, 1, 1, 1)
	r.AddVote(q2, 2, 1, 1)
	r.FinishQuestion(q2, 1, 0, 0, 0, 0, "")
	r.BeginTuple(2)
	r.RecordCheck(2, "edge", "crowd", []int{0, 1}, `Does "Rome" capitalOf "France"?`, q2, false)
	r.RecordVerdict(2, "erroneous", false, false)
	r.RecordRepair(2, 5, []Candidate{
		{Graph: 3, Cost: 1, Changes: []Change{{Col: 1, From: "France", To: "Italy"}}},
		{Graph: 9, Cost: 2, Changes: []Change{{Col: 0, From: "Rome", To: "Paris"}, {Col: 1, From: "France", To: "France2"}}},
	})

	// Unit 3: budget ran out mid-tuple — degraded Unknown.
	q3 := r.StartQuestion("bool", `Is "Atlantis" a city?`, []string{"yes", "no"})
	r.FinishQuestion(q3, -1, 2, 1, 1, 0, "budget exhausted")
	r.BeginTuple(3)
	r.RecordCheck(3, "node", "degraded", []int{0}, `Is "Atlantis" a city?`, q3, false)
	r.RecordVerdict(3, "unknown", true, false)
	return r
}

// TestJournalDeterminism: serialising the same evidence twice yields
// byte-identical JSONL, the journal lints clean, and the bytes match the
// pinned golden file (regenerate with UPDATE_GOLDEN=1 go test).
func TestJournalDeterminism(t *testing.T) {
	rec := sampleRecorder()
	var a, b bytes.Buffer
	if err := rec.WriteJournal(&a); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteJournal(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two serialisations of the same evidence differ")
	}
	if err := LintJournal(bytes.NewReader(a.Bytes())); err != nil {
		t.Fatalf("journal does not lint: %v", err)
	}

	golden := filepath.Join("testdata", "journal.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(a.Bytes(), want) {
		t.Fatalf("journal differs from golden file\n--- got ---\n%s\n--- want ---\n%s", a.Bytes(), want)
	}
}

// TestLintJournalRejects: each schema violation is caught with an error
// naming the offending line.
func TestLintJournalRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRecorder().WriteJournal(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	cases := []struct {
		name    string
		journal string
		want    string
	}{
		{"empty", "", "no meta record"},
		{"not JSON", "meta\n", "invalid JSON"},
		{"first line not meta", lines[1] + "\n", "first record must be meta"},
		{"wrong version", `{"type":"meta","version":99}` + "\n", "version must be"},
		{"duplicate meta", lines[0] + "\n" + lines[0] + "\n", "duplicate meta"},
		{"unknown type", lines[0] + "\n" + `{"type":"wat"}` + "\n", "unknown record type"},
		{"question ids not increasing", lines[0] + "\n" +
			`{"type":"question","id":2,"kind":"bool","prompt":"p","votes":[],"outcome":0}` + "\n" +
			`{"type":"question","id":1,"kind":"bool","prompt":"p","votes":[],"outcome":0}` + "\n",
			"not strictly increasing"},
		{"dangling qid", lines[0] + "\n" +
			`{"type":"tuple","unit":0,"rows":[0],"verdict":"erroneous","checks":[{"kind":"edge","source":"crowd","cols":[0],"desc":"d","qid":7,"confirmed":false}]}` + "\n",
			"unknown question id 7"},
		{"pattern missing score", lines[0] + "\n" + `{"type":"pattern","key":"k"}` + "\n", "pattern"},
	}
	for _, tc := range cases {
		err := LintJournal(strings.NewReader(tc.journal))
		if err == nil {
			t.Errorf("%s: lint accepted a broken journal", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestExplainVerdictClasses: the per-cell projection carries the right
// evidence for every verdict class, including the degraded Unknown path.
func TestExplainVerdictClasses(t *testing.T) {
	rec := sampleRecorder()

	kbFull := rec.Explain(0, 0)
	if kbFull.Verdict != "validated-by-kb" || !kbFull.KBFull {
		t.Fatalf("unit 0: verdict %q kbFull %v", kbFull.Verdict, kbFull.KBFull)
	}
	if len(kbFull.Questions) != 0 {
		t.Fatalf("unit 0 references %d questions, want 0", len(kbFull.Questions))
	}

	crowd := rec.Explain(1, 1)
	if crowd.Verdict != "validated-by-kb-and-crowd" {
		t.Fatalf("unit 1: verdict %q", crowd.Verdict)
	}
	if len(crowd.Questions) != 1 || len(crowd.Questions[0].Votes) != 3 {
		t.Fatalf("unit 1: questions %+v", crowd.Questions)
	}
	if crowd.Questions[0].Retries != 1 {
		t.Fatalf("unit 1: retries %d, want 1", crowd.Questions[0].Retries)
	}

	errn := rec.Explain(2, 1)
	if errn.Verdict != "erroneous" || errn.Repair == nil {
		t.Fatalf("unit 2: verdict %q repair %v", errn.Verdict, errn.Repair)
	}
	if errn.Change == nil || errn.Change.To != "Italy" {
		t.Fatalf("unit 2: applied change %+v, want -> Italy", errn.Change)
	}

	unk := rec.Explain(3, 0)
	if unk.Verdict != "unknown" || !unk.Degraded {
		t.Fatalf("unit 3: verdict %q degraded %v", unk.Verdict, unk.Degraded)
	}
	if len(unk.Questions) != 1 || unk.Questions[0].Error == "" {
		t.Fatalf("unit 3: degraded question not surfaced: %+v", unk.Questions)
	}

	// Row 4 duplicates row 0's signature: same decision unit, fan-out listed.
	dup := rec.Explain(4, 0)
	if dup.Unit != 0 || len(dup.Rows) != 2 {
		t.Fatalf("row 4: unit %d rows %v, want unit 0 shared by [0 4]", dup.Unit, dup.Rows)
	}

	// A never-recorded row explains to an explicitly empty chain.
	empty := rec.Explain(99, 0)
	if !empty.Empty() {
		t.Fatalf("row 99 should have no evidence: %+v", empty)
	}
	var txt bytes.Buffer
	empty.WriteText(&txt)
	if !strings.Contains(txt.String(), "no recorded evidence") {
		t.Fatalf("text rendering of an empty chain: %q", txt.String())
	}
}

// TestChildMergeDeterminism: shard children merged in shard order serialise
// identically to the same evidence recorded directly — the journal cannot
// tell a sharded run from a serial one.
func TestChildMergeDeterminism(t *testing.T) {
	direct := NewRecorder()
	direct.SetRowUnits([]int{0, 1, 2, 3}, false)
	sharded := NewRecorder()
	sharded.SetRowUnits([]int{0, 1, 2, 3}, false)

	record := func(r *Recorder, unit int) {
		r.BeginTuple(unit)
		r.RecordCheck(unit, "node", "kb", []int{0}, "d", 0, true)
		r.RecordVerdict(unit, "erroneous", false, false)
		r.RecordRepair(unit, unit+1, []Candidate{{Graph: unit, Cost: 1, Changes: []Change{{Col: 0, From: "a", To: "b"}}}})
	}
	for u := 0; u < 4; u++ {
		record(direct, u)
	}
	// Two shards owning units {0,1} and {2,3}, recorded out of order within
	// the run but merged in shard order.
	c0, c1 := sharded.Child(), sharded.Child()
	record(c1, 3)
	record(c0, 1)
	record(c1, 2)
	record(c0, 0)
	sharded.Merge(c0)
	sharded.Merge(c1)

	var a, b bytes.Buffer
	if err := direct.WriteJournal(&a); err != nil {
		t.Fatal(err)
	}
	if err := sharded.WriteJournal(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("sharded journal differs from direct journal\n--- direct ---\n%s\n--- sharded ---\n%s", a.Bytes(), b.Bytes())
	}
}

// TestBeginTupleDedup: a settled verdict is kept for later duplicates, but
// a degraded record is cleared and re-recorded.
func TestBeginTupleDedup(t *testing.T) {
	r := NewRecorder()
	if !r.BeginTuple(0) {
		t.Fatal("first BeginTuple should record")
	}
	r.RecordVerdict(0, "validated-by-kb", false, true)
	if r.BeginTuple(0) {
		t.Fatal("settled unit should not re-record")
	}

	if !r.BeginTuple(1) {
		t.Fatal("first BeginTuple should record")
	}
	r.RecordCheck(1, "node", "degraded", []int{0}, "d", 0, false)
	r.RecordVerdict(1, "unknown", true, false)
	if !r.BeginTuple(1) {
		t.Fatal("degraded unit should be re-recordable")
	}
	r.RecordVerdict(1, "validated-by-kb-and-crowd", false, false)
	if e := r.Explain(1, 0); e.Verdict != "validated-by-kb-and-crowd" || len(e.Checks) != 0 {
		t.Fatalf("degraded record not cleared: %+v", e)
	}
}

// TestBuildAudit: the run-level aggregation fans units out to rows and
// classifies repair confidence by cost margin.
func TestBuildAudit(t *testing.T) {
	rec := sampleRecorder()
	a := rec.BuildAudit()
	if a.Rows != 6 {
		t.Fatalf("audit rows = %d, want 6", a.Rows)
	}
	// Units 0 and 1 each cover two duplicate rows.
	if got := a.CellsByClass["validated-by-kb"]; got != 2 {
		t.Fatalf("validated-by-kb rows = %d, want 2", got)
	}
	if got := a.CellsByClass["validated-by-kb-and-crowd"]; got != 2 {
		t.Fatalf("validated-by-kb-and-crowd rows = %d, want 2", got)
	}
	if a.Questions != 3 {
		t.Fatalf("questions = %d, want 3", a.Questions)
	}
	if a.RepairedRows != 1 {
		t.Fatalf("repaired rows = %d, want 1", a.RepairedRows)
	}
}
