// Per-cell explanation and run-level audit: project the recorded lineage
// onto one (row, col) cell — fanning a deduped decision unit out to the row
// that asked — or aggregate it into the audit summary the daemon embeds in
// every ResultDoc.
package provenance

import (
	"fmt"
	"io"
	"sort"
)

// Explanation is the evidence chain behind one cell: the pattern the run
// validated, the MUVF steps that validated it, the tuple's annotation checks
// filtered to the cell's column, the crowd questions those checks reference,
// and — when the tuple was repaired — the candidate list and the change
// applied to this column.
type Explanation struct {
	Row  int   `json:"row"`
	Col  int   `json:"col"`
	Unit int   `json:"unit"`
	Rows []int `json:"rows"` // every row sharing the decision unit

	Pattern   *PatternScore    `json:"pattern,omitempty"`
	Steps     []ValidationStep `json:"validation_steps,omitempty"`
	Verdict   string           `json:"verdict,omitempty"`
	Degraded  bool             `json:"degraded,omitempty"`
	KBFull    bool             `json:"kb_full,omitempty"`
	Checks    []Check          `json:"checks"`
	Questions []Question       `json:"questions"`
	Repair    *RepairRecord    `json:"repair,omitempty"`
	Change    *Change          `json:"change,omitempty"` // the applied change on this column, if any
}

// Empty reports whether the explanation carries no evidence at all (the
// recorder never saw the cell's decision unit).
func (e *Explanation) Empty() bool {
	return e == nil || (e.Verdict == "" && len(e.Checks) == 0 && e.Repair == nil)
}

// Explain projects the recorded lineage onto cell (row, col). Under dedup
// the row is first mapped to its decision unit, so duplicate rows share one
// evidence chain. Checks are filtered to those concerning col (checks with
// no column attribution — e.g. path rechecks spanning the whole tuple — are
// kept); the questions slice holds every question the kept checks reference,
// in ID order.
func (r *Recorder) Explain(row, col int) *Explanation {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	unit := r.unitOfLocked(row)
	e := &Explanation{
		Row:  row,
		Col:  col,
		Unit: unit,
		Rows: r.rowsOfLocked(unit),
	}
	for i := range r.patterns {
		if r.patterns[i].Chosen {
			p := r.patterns[i]
			e.Pattern = &p
			break
		}
	}
	e.Steps = append([]ValidationStep(nil), r.steps...)

	qids := map[int64]bool{}
	if t, ok := r.tuples[unit]; ok {
		e.Verdict = t.Verdict
		e.Degraded = t.Degraded
		e.KBFull = t.KBFull
		for _, c := range t.Checks {
			if !checkConcerns(c, col) {
				continue
			}
			e.Checks = append(e.Checks, c)
			if c.QID > 0 {
				qids[c.QID] = true
			}
		}
	}
	if rec, ok := r.repairs[unit]; ok {
		cp := *rec
		e.Repair = &cp
		if len(rec.Candidates) > 0 {
			for _, ch := range rec.Candidates[0].Changes {
				if ch.Col == col {
					chCopy := ch
					e.Change = &chCopy
					break
				}
			}
		}
	}
	ids := make([]int64, 0, len(qids))
	for id := range qids {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if q := r.questionLocked(id); q != nil {
			e.Questions = append(e.Questions, *q)
		}
	}
	if e.Checks == nil {
		e.Checks = []Check{}
	}
	if e.Questions == nil {
		e.Questions = []Question{}
	}
	return e
}

// checkConcerns reports whether c bears on column col. Checks with no
// column attribution apply to the whole tuple.
func checkConcerns(c Check, col int) bool {
	if len(c.Cols) == 0 {
		return true
	}
	for _, cc := range c.Cols {
		if cc == col {
			return true
		}
	}
	return false
}

// WriteText renders the evidence chain for humans — the `katara -explain`
// output format.
func (e *Explanation) WriteText(w io.Writer) {
	fmt.Fprintf(w, "cell (row %d, col %d)\n", e.Row, e.Col)
	if len(e.Rows) > 1 {
		fmt.Fprintf(w, "  decision unit %d shared by %d duplicate rows %v\n", e.Unit, len(e.Rows), e.Rows)
	}
	if e.Pattern != nil {
		fmt.Fprintf(w, "  pattern: %s (rank-join score %.3f)\n", e.Pattern.Key, e.Pattern.Score)
	}
	for _, s := range e.Steps {
		deg := ""
		if s.Degraded {
			deg = " [degraded]"
		}
		fmt.Fprintf(w, "  validation step %d: variable %s (entropy %.3f) -> %s after %d question(s)%s\n",
			s.Step, s.Variable, s.Entropy, s.Answer, s.Questions, deg)
	}
	if e.Verdict != "" {
		deg := ""
		if e.Degraded {
			deg = " [degraded]"
		}
		fmt.Fprintf(w, "  verdict: %s%s\n", e.Verdict, deg)
	}
	if e.KBFull {
		fmt.Fprintf(w, "  fully matched in the KB: no crowd questions needed\n")
	}
	for _, c := range e.Checks {
		status := "rejected"
		if c.Confirmed {
			status = "confirmed"
		}
		via := c.Source
		if c.QID > 0 {
			via = fmt.Sprintf("%s question #%d", c.Source, c.QID)
		}
		fmt.Fprintf(w, "  %s check: %s -> %s (%s)\n", c.Kind, c.Desc, status, via)
	}
	for _, q := range e.Questions {
		fmt.Fprintf(w, "  question #%d (%s): %s\n", q.ID, q.Kind, q.Prompt)
		for _, v := range q.Votes {
			opt := fmt.Sprintf("option %d", v.Option)
			if v.Option >= 0 && v.Option < len(q.Options) {
				opt = q.Options[v.Option]
			}
			fmt.Fprintf(w, "    worker %d voted %q (weight %.2f)\n", v.Worker, opt, v.Weight)
		}
		if q.Retries+q.Timeouts+q.Abandonments+q.Escalations > 0 {
			fmt.Fprintf(w, "    resilience: %d retries, %d timeouts, %d abandonments, %d escalations\n",
				q.Retries, q.Timeouts, q.Abandonments, q.Escalations)
		}
		if q.Error != "" {
			fmt.Fprintf(w, "    degraded: %s\n", q.Error)
		}
	}
	if e.Repair != nil {
		fmt.Fprintf(w, "  repair: %d instance graph(s) retrieved, top %d kept\n",
			e.Repair.Considered, len(e.Repair.Candidates))
		for i, c := range e.Repair.Candidates {
			marker := "  "
			if i == 0 {
				marker = "->"
			}
			fmt.Fprintf(w, "  %s candidate %d: graph %d, cost %.3f, %d change(s)\n",
				marker, i+1, c.Graph, c.Cost, len(c.Changes))
		}
		if len(e.Repair.Candidates) > 1 {
			gap := e.Repair.Candidates[1].Cost - e.Repair.Candidates[0].Cost
			fmt.Fprintf(w, "  winner: graph %d — lowest (cost, graph-id); margin over runner-up %.3f\n",
				e.Repair.Candidates[0].Graph, gap)
		} else if len(e.Repair.Candidates) == 1 {
			fmt.Fprintf(w, "  winner: graph %d — only candidate retrieved\n", e.Repair.Candidates[0].Graph)
		}
	}
	if e.Change != nil {
		fmt.Fprintf(w, "  applied change: %q -> %q\n", e.Change.From, e.Change.To)
	}
	if e.Empty() {
		fmt.Fprintf(w, "  no recorded evidence for this cell\n")
	}
}

// Audit is the run-level aggregation embedded in the daemon's ResultDoc:
// tuple counts by evidence class (fanned out to rows), crowd questions per
// verdict, and the repair-confidence histogram (cost margin between the
// winning candidate and the runner-up).
type Audit struct {
	Rows                int            `json:"rows"`
	CellsByClass        map[string]int `json:"cells_by_class"`
	QuestionsPerVerdict map[string]int `json:"questions_per_verdict"`
	RepairConfidence    map[string]int `json:"repair_confidence"`
	Questions           int            `json:"questions"`
	RepairedRows        int            `json:"repaired_rows"`
	Drifts              []DriftEvent   `json:"drifts,omitempty"`
}

// Confidence histogram bucket labels, from a lone candidate (nothing to
// confuse the winner with) down to a near-tie.
const (
	ConfidenceSingle = "single-candidate" // only one candidate retrieved
	ConfidenceWide   = "margin>=1"
	ConfidenceMedium = "margin>=0.5"
	ConfidenceNarrow = "margin<0.5"
)

// BuildAudit aggregates the recorded lineage. Counts are per row (deduped
// units fan out), so the audit matches the report the user sees.
func (r *Recorder) BuildAudit() *Audit {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	a := &Audit{
		CellsByClass:        map[string]int{},
		QuestionsPerVerdict: map[string]int{},
		RepairConfidence:    map[string]int{},
		Questions:           len(r.questions),
		Rows:                len(r.rowUnit),
		Drifts:              append([]DriftEvent(nil), r.drifts...),
	}
	annotated := 0
	for _, u := range sortedUnits(r.tuples) {
		t := r.tuples[u]
		fan := len(r.rowsOfLocked(u))
		annotated += fan
		verdict := t.Verdict
		if verdict == "" {
			verdict = "unknown"
		}
		a.CellsByClass[verdict] += fan
		qids := map[int64]bool{}
		for _, c := range t.Checks {
			if c.QID > 0 {
				qids[c.QID] = true
			}
		}
		a.QuestionsPerVerdict[verdict] += len(qids)
	}
	if a.Rows == 0 {
		a.Rows = annotated
	}
	for _, u := range sortedUnits(r.repairs) {
		rec := r.repairs[u]
		if len(rec.Candidates) == 0 {
			continue
		}
		fan := len(r.rowsOfLocked(u))
		a.RepairedRows += fan
		var bucket string
		if len(rec.Candidates) == 1 {
			bucket = ConfidenceSingle
		} else {
			switch margin := rec.Candidates[1].Cost - rec.Candidates[0].Cost; {
			case margin >= 1:
				bucket = ConfidenceWide
			case margin >= 0.5:
				bucket = ConfidenceMedium
			default:
				bucket = ConfidenceNarrow
			}
		}
		a.RepairConfidence[bucket] += fan
	}
	return a
}
