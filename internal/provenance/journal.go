// JSONL provenance journal: one self-describing record per line, written in
// a canonical order (meta, patterns, validation steps, questions by ID,
// tuples by unit, repairs by unit) so the same run always serialises to the
// same bytes — the golden-file determinism test and the schema linter both
// depend on it.
package provenance

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// JournalVersion is the provenance journal schema version.
const JournalVersion = 1

type metaLine struct {
	Type      string `json:"type"`
	Version   int    `json:"version"`
	Dedup     bool   `json:"dedup"`
	Rows      int    `json:"rows"`
	Units     int    `json:"units"`
	Questions int    `json:"questions"`
}

type patternLine struct {
	Type string `json:"type"`
	PatternScore
}

type stepLine struct {
	Type string `json:"type"`
	ValidationStep
}

type questionLine struct {
	Type string `json:"type"`
	Question
}

type tupleLine struct {
	Type string `json:"type"`
	Rows []int  `json:"rows"`
	Tuple
}

type repairLine struct {
	Type string `json:"type"`
	Rows []int  `json:"rows"`
	RepairRecord
}

// WriteJournal serialises the recorded evidence as JSONL. The output is a
// pure function of the recorded evidence: same run, same bytes.
func (r *Recorder) WriteJournal(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)

	rows := len(r.rowUnit)
	units := 0
	if r.rowUnit != nil {
		seen := map[int]bool{}
		for _, u := range r.rowUnit {
			seen[u] = true
		}
		units = len(seen)
	}
	if err := enc.Encode(metaLine{
		Type: "meta", Version: JournalVersion, Dedup: r.dedup,
		Rows: rows, Units: units, Questions: len(r.questions),
	}); err != nil {
		return err
	}
	for _, p := range r.patterns {
		if err := enc.Encode(patternLine{Type: "pattern", PatternScore: p}); err != nil {
			return err
		}
	}
	for _, s := range r.steps {
		if err := enc.Encode(stepLine{Type: "validation-step", ValidationStep: s}); err != nil {
			return err
		}
	}
	for i := range r.questions {
		q := r.questions[i]
		if q.Votes == nil {
			q.Votes = []Vote{}
		}
		if err := enc.Encode(questionLine{Type: "question", Question: q}); err != nil {
			return err
		}
	}
	for _, u := range sortedUnits(r.tuples) {
		t := *r.tuples[u]
		if t.Checks == nil {
			t.Checks = []Check{}
		}
		if err := enc.Encode(tupleLine{Type: "tuple", Rows: r.rowsOfLocked(u), Tuple: t}); err != nil {
			return err
		}
	}
	for _, u := range sortedUnits(r.repairs) {
		rec := *r.repairs[u]
		if rec.Candidates == nil {
			rec.Candidates = []Candidate{}
		}
		if err := enc.Encode(repairLine{Type: "repair", Rows: r.rowsOfLocked(u), RepairRecord: rec}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LintJournal validates a provenance journal against the schema: the first
// line must be a meta record with the current version; every line must be
// valid JSON with a known type and that type's required fields; question IDs
// must be 1-based and strictly increasing; every qid a check references must
// name a question the journal contains. Returns nil for a clean journal, or
// an error naming the first offending line.
func LintJournal(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	qids := map[int64]bool{}
	lastQID := int64(0)
	type pendingRef struct {
		line int
		qid  int64
	}
	var refs []pendingRef
	sawMeta := false
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			return fmt.Errorf("provenance journal line %d: empty line", lineNo)
		}
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("provenance journal line %d: invalid JSON: %v", lineNo, err)
		}
		typ, _ := rec["type"].(string)
		if lineNo == 1 {
			if typ != "meta" {
				return fmt.Errorf("provenance journal line 1: first record must be meta, got %q", typ)
			}
			v, ok := rec["version"].(float64)
			if !ok || int(v) != JournalVersion {
				return fmt.Errorf("provenance journal line 1: version must be %d", JournalVersion)
			}
			sawMeta = true
			continue
		}
		switch typ {
		case "meta":
			return fmt.Errorf("provenance journal line %d: duplicate meta record", lineNo)
		case "pattern":
			if err := requireFields(rec, "key", "score"); err != nil {
				return fmt.Errorf("provenance journal line %d: pattern: %v", lineNo, err)
			}
		case "validation-step":
			if err := requireFields(rec, "step", "variable", "entropy", "questions", "answer"); err != nil {
				return fmt.Errorf("provenance journal line %d: validation-step: %v", lineNo, err)
			}
		case "question":
			if err := requireFields(rec, "id", "kind", "prompt", "votes", "outcome"); err != nil {
				return fmt.Errorf("provenance journal line %d: question: %v", lineNo, err)
			}
			id := int64(rec["id"].(float64))
			if id <= lastQID {
				return fmt.Errorf("provenance journal line %d: question id %d not strictly increasing (last %d)", lineNo, id, lastQID)
			}
			lastQID = id
			qids[id] = true
		case "tuple":
			if err := requireFields(rec, "unit", "verdict", "checks", "rows"); err != nil {
				return fmt.Errorf("provenance journal line %d: tuple: %v", lineNo, err)
			}
			checks, _ := rec["checks"].([]any)
			for _, c := range checks {
				cm, ok := c.(map[string]any)
				if !ok {
					return fmt.Errorf("provenance journal line %d: tuple: check is not an object", lineNo)
				}
				if err := requireFields(cm, "kind", "source", "cols", "desc"); err != nil {
					return fmt.Errorf("provenance journal line %d: tuple check: %v", lineNo, err)
				}
				if q, ok := cm["qid"].(float64); ok && q > 0 {
					refs = append(refs, pendingRef{line: lineNo, qid: int64(q)})
				}
			}
		case "repair":
			if err := requireFields(rec, "unit", "considered", "candidates", "rows"); err != nil {
				return fmt.Errorf("provenance journal line %d: repair: %v", lineNo, err)
			}
			cands, _ := rec["candidates"].([]any)
			for _, c := range cands {
				cm, ok := c.(map[string]any)
				if !ok {
					return fmt.Errorf("provenance journal line %d: repair: candidate is not an object", lineNo)
				}
				if err := requireFields(cm, "graph", "cost", "changes"); err != nil {
					return fmt.Errorf("provenance journal line %d: repair candidate: %v", lineNo, err)
				}
			}
		default:
			return fmt.Errorf("provenance journal line %d: unknown record type %q", lineNo, typ)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("provenance journal: %v", err)
	}
	if !sawMeta {
		return fmt.Errorf("provenance journal: empty (no meta record)")
	}
	for _, ref := range refs {
		if !qids[ref.qid] {
			return fmt.Errorf("provenance journal line %d: check references unknown question id %d", ref.line, ref.qid)
		}
	}
	return nil
}

func requireFields(rec map[string]any, fields ...string) error {
	for _, f := range fields {
		if _, ok := rec[f]; !ok {
			return fmt.Errorf("missing required field %q", f)
		}
	}
	return nil
}
