// Package provenance records the evidence lineage behind every cell-level
// decision the cleaning pipeline takes: which candidate patterns scored how
// during discovery, which MUVF entropy steps validated the winner (§5), which
// KB facts and crowd questions decided each tuple's annotation (§6.1) — down
// to the per-worker votes, retries and degradation events behind each
// question — and which top-k candidate graphs a repair was chosen from
// (§6.2), with their costs.
//
// The instrument is a *Recorder. A nil *Recorder is the disabled instrument:
// every method is safe to call on it and does nothing, without allocating,
// mirroring the nil *telemetry.Pipeline idiom. Call sites that must build
// evidence values (descriptions, candidate lists) guard on Enabled() so the
// disabled pipeline does no provenance work at all; reports are byte-identical
// with provenance on or off (a propcheck invariant).
//
// Under distinct-signature dedup the pipeline decides once per signature
// group; the recorder stores evidence per decision unit (the group index, or
// the row index when dedup is off) and fans out to rows at read time via the
// row→unit mapping installed by SetRowUnits.
package provenance

import (
	"sort"
	"sync"
)

// PatternScore is one discovery candidate: a tree pattern's rank-join score
// and whether it was the pattern the run chose.
type PatternScore struct {
	Key    string  `json:"key"`
	Score  float64 `json:"score"`
	Chosen bool    `json:"chosen"`
}

// ValidationStep is one MUVF iteration (§5): the variable picked by maximum
// entropy, the questions spent on it, and the answer the crowd settled on.
type ValidationStep struct {
	Step      int     `json:"step"`
	Variable  string  `json:"variable"`
	Entropy   float64 `json:"entropy"`
	Questions int     `json:"questions"`
	Answer    string  `json:"answer"`
	Degraded  bool    `json:"degraded,omitempty"`
}

// Vote is one worker's answer to a question, with its voting weight (1 under
// plain majority, log-odds reliability under weighted voting).
type Vote struct {
	Worker int     `json:"worker"`
	Option int     `json:"option"`
	Weight float64 `json:"weight"`
}

// Question is the full record of one crowd question: the per-worker votes
// and the resilience events (retries, timeouts, abandonments, escalations)
// it absorbed on the way to its outcome.
type Question struct {
	ID           int64    `json:"id"`
	Kind         string   `json:"kind"`
	Prompt       string   `json:"prompt"`
	Options      []string `json:"options,omitempty"`
	Votes        []Vote   `json:"votes"`
	Outcome      int      `json:"outcome"`
	Retries      int64    `json:"retries,omitempty"`
	Timeouts     int64    `json:"timeouts,omitempty"`
	Abandonments int64    `json:"abandonments,omitempty"`
	Escalations  int64    `json:"escalations,omitempty"`
	Error        string   `json:"error,omitempty"`
}

// Check is one piece of per-tuple evidence: a KB fact that matched, a crowd
// question that confirmed or rejected a missing piece, a memoized answer
// reused from an identical earlier question, or a degraded (unanswered)
// check. Cols lists the table columns the check concerns, so per-(row, col)
// explanations can filter the tuple's evidence chain.
type Check struct {
	Kind      string `json:"kind"`   // "node" | "edge" | "path" | "recheck"
	Source    string `json:"source"` // "kb" | "crowd" | "memo" | "degraded"
	Cols      []int  `json:"cols"`
	Desc      string `json:"desc"`
	QID       int64  `json:"qid,omitempty"`
	Confirmed bool   `json:"confirmed"`
}

// Tuple is one decision unit's annotation evidence: the verdict (§6.1 case
// i/ii/iii or Unknown) plus every check that led to it.
type Tuple struct {
	Unit     int     `json:"unit"`
	Verdict  string  `json:"verdict"`
	Degraded bool    `json:"degraded,omitempty"`
	KBFull   bool    `json:"kb_full,omitempty"`
	Checks   []Check `json:"checks"`
}

// Change is one cell rewrite proposed by a candidate repair.
type Change struct {
	Col  int    `json:"col"`
	From string `json:"from"`
	To   string `json:"to"`
}

// Candidate is one scored repair candidate: the instance graph, its repair
// cost (covered weight minus inverted-list agreement), and the cell changes
// aligning the tuple to it. Candidates are recorded in rank order — the
// winner is index 0 because it has the minimum (cost, graph) pair, which is
// exactly the ordering TopK applies; re-sorting the recorded list must
// reproduce it (a propcheck replay invariant).
type Candidate struct {
	Graph   int      `json:"graph"`
	Cost    float64  `json:"cost"`
	Changes []Change `json:"changes"`
}

// RepairRecord is one decision unit's repair evidence: how many instance
// graphs the inverted lists retrieved and the top-k candidates kept.
type RepairRecord struct {
	Unit       int         `json:"unit"`
	Considered int         `json:"considered"`
	Candidates []Candidate `json:"candidates"`
}

// DriftEvent records one pattern-drift detection during incremental
// cleaning: an appended sample shifted a validation decision context (or
// demoted the validated pattern below its runner-up), forcing a full
// re-validation instead of delta reuse.
type DriftEvent struct {
	Seq    int    `json:"seq"`    // 1-based order of detection in the session
	Reason string `json:"reason"` // what the drift detector observed
	Rows   int    `json:"rows"`   // table size at detection time
}

// Recorder accumulates one run's evidence lineage. The zero value is ready
// to use; nil means disabled. Methods are safe for concurrent use, but
// question IDs are only assigned by the recorder the crowd asks through
// (questions are issued serially by the orchestrating goroutine); shard
// children record tuple/repair evidence for disjoint unit ranges and merge
// back deterministically.
type Recorder struct {
	mu      sync.Mutex
	rowUnit []int // row -> decision unit; nil = identity
	dedup   bool

	patterns  []PatternScore
	steps     []ValidationStep
	questions []Question
	tuples    map[int]*Tuple
	repairs   map[int]*RepairRecord
	drifts    []DriftEvent
	nextQID   int64
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder {
	return &Recorder{
		tuples:  make(map[int]*Tuple),
		repairs: make(map[int]*RepairRecord),
	}
}

// Enabled reports whether the recorder collects evidence. Call sites that
// must allocate to build evidence values (descriptions, candidate lists)
// guard on it so the disabled path stays zero-cost.
func (r *Recorder) Enabled() bool { return r != nil }

// SetRowUnits installs the row→decision-unit mapping (the interned table's
// signature groups) and marks whether dedup collapsed rows. A nil mapping
// means every row is its own unit.
func (r *Recorder) SetRowUnits(units []int, dedup bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if units == nil {
		r.rowUnit, r.dedup = nil, dedup
		return
	}
	r.rowUnit = append([]int(nil), units...)
	r.dedup = dedup
}

// UnitOf returns row's decision unit (identity when no mapping installed).
func (r *Recorder) UnitOf(row int) int {
	if r == nil {
		return row
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.unitOfLocked(row)
}

func (r *Recorder) unitOfLocked(row int) int {
	if r.rowUnit == nil || row < 0 || row >= len(r.rowUnit) {
		return row
	}
	return r.rowUnit[row]
}

// rowsOfLocked returns the rows fanning out from unit, ascending.
func (r *Recorder) rowsOfLocked(unit int) []int {
	if r.rowUnit == nil {
		return []int{unit}
	}
	var rows []int
	for row, u := range r.rowUnit {
		if u == unit {
			rows = append(rows, row)
		}
	}
	return rows
}

// RecordPattern records one discovery candidate's score.
func (r *Recorder) RecordPattern(key string, score float64, chosen bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.patterns = append(r.patterns, PatternScore{Key: key, Score: score, Chosen: chosen})
}

// RecordValidationStep records one MUVF entropy iteration.
func (r *Recorder) RecordValidationStep(variable string, entropy float64, questions int, answer string, degraded bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.steps = append(r.steps, ValidationStep{
		Step:      len(r.steps) + 1,
		Variable:  variable,
		Entropy:   entropy,
		Questions: questions,
		Answer:    answer,
		Degraded:  degraded,
	})
}

// RecordDrift records one pattern-drift detection (incremental cleaning's
// lazy re-validation trigger). Unlike the per-run evidence, drift events
// survive Reset only through the caller re-recording them — each Append pass
// accumulates into the same session recorder, so they build up naturally.
func (r *Recorder) RecordDrift(reason string, rows int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drifts = append(r.drifts, DriftEvent{Seq: len(r.drifts) + 1, Reason: reason, Rows: rows})
}

// Drifts returns the recorded drift events in detection order.
func (r *Recorder) Drifts() []DriftEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]DriftEvent(nil), r.drifts...)
}

// StartQuestion opens a question record and returns its ID (IDs are 1-based
// and strictly increasing in ask order). The options slice is copied.
func (r *Recorder) StartQuestion(kind, prompt string, options []string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextQID++
	r.questions = append(r.questions, Question{
		ID:      r.nextQID,
		Kind:    kind,
		Prompt:  prompt,
		Options: append([]string(nil), options...),
	})
	return r.nextQID
}

// AddVote appends one worker's answer to question qid.
func (r *Recorder) AddVote(qid int64, worker, option int, weight float64) {
	if r == nil || qid <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if q := r.questionLocked(qid); q != nil {
		q.Votes = append(q.Votes, Vote{Worker: worker, Option: option, Weight: weight})
	}
}

// FinishQuestion closes question qid with its outcome and resilience
// accounting. errMsg is non-empty when the question failed outright
// (budget exhausted or deadline expired with no votes).
func (r *Recorder) FinishQuestion(qid int64, outcome int, retries, timeouts, abandonments, escalations int64, errMsg string) {
	if r == nil || qid <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if q := r.questionLocked(qid); q != nil {
		q.Outcome = outcome
		q.Retries = retries
		q.Timeouts = timeouts
		q.Abandonments = abandonments
		q.Escalations = escalations
		q.Error = errMsg
	}
}

func (r *Recorder) questionLocked(qid int64) *Question {
	i := int(qid) - 1
	if i < 0 || i >= len(r.questions) {
		return nil
	}
	return &r.questions[i]
}

// LastQuestionID returns the ID of the most recently started question
// (0 when none). Questions are asked serially by the orchestrating
// goroutine, so a caller that just issued one reads its ID back here.
func (r *Recorder) LastQuestionID() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextQID
}

// BeginTuple opens (or reopens) unit's tuple record and reports whether the
// caller should record evidence for it. A unit with a settled verdict keeps
// its record — duplicate rows of a deduped signature share the first
// occurrence's evidence — but a degraded record is cleared and re-recorded:
// degradation is a property of the run's remaining budget, and a later
// duplicate may obtain real answers.
func (r *Recorder) BeginTuple(unit int) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.tuples[unit]; ok && t.Verdict != "" && !t.Degraded {
		return false
	}
	if r.tuples == nil {
		r.tuples = make(map[int]*Tuple)
	}
	r.tuples[unit] = &Tuple{Unit: unit}
	return true
}

// RecordCheck appends one evidence check to unit's tuple record. The cols
// slice is copied.
func (r *Recorder) RecordCheck(unit int, kind, source string, cols []int, desc string, qid int64, confirmed bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tupleLocked(unit)
	t.Checks = append(t.Checks, Check{
		Kind:      kind,
		Source:    source,
		Cols:      append([]int(nil), cols...),
		Desc:      desc,
		QID:       qid,
		Confirmed: confirmed,
	})
}

// RecordVerdict sets unit's annotation verdict.
func (r *Recorder) RecordVerdict(unit int, verdict string, degraded, kbFull bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tupleLocked(unit)
	t.Verdict = verdict
	t.Degraded = degraded
	t.KBFull = kbFull
}

func (r *Recorder) tupleLocked(unit int) *Tuple {
	if r.tuples == nil {
		r.tuples = make(map[int]*Tuple)
	}
	t, ok := r.tuples[unit]
	if !ok {
		t = &Tuple{Unit: unit}
		r.tuples[unit] = t
	}
	return t
}

// RecordRepair records unit's candidate list (rank order; the winner is
// index 0) and how many graphs the inverted lists retrieved.
func (r *Recorder) RecordRepair(unit, considered int, cands []Candidate) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.repairs == nil {
		r.repairs = make(map[int]*RepairRecord)
	}
	r.repairs[unit] = &RepairRecord{Unit: unit, Considered: considered, Candidates: cands}
}

// Child returns a recorder for one shard of a parallel stage. Children
// record tuple/repair evidence for their shard's unit range; question IDs
// stay with the parent (crowd interaction is serial).
func (r *Recorder) Child() *Recorder {
	if r == nil {
		return nil
	}
	return NewRecorder()
}

// Merge folds a shard child's evidence back into r. Units are disjoint
// across shards (each row range belongs to exactly one shard), so merging
// children in shard order is deterministic regardless of completion order.
func (r *Recorder) Merge(child *Recorder) {
	if r == nil || child == nil {
		return
	}
	child.mu.Lock()
	patterns := child.patterns
	steps := child.steps
	questions := child.questions
	tuples := child.tuples
	repairs := child.repairs
	child.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	r.patterns = append(r.patterns, patterns...)
	r.steps = append(r.steps, steps...)
	r.questions = append(r.questions, questions...)
	for u, t := range tuples {
		r.tuples[u] = t
	}
	for u, rec := range repairs {
		r.repairs[u] = rec
	}
}

// Reset clears all recorded evidence (the run-level recorder is reused when
// a cleaner retries discovery). Drift events are deliberately kept: they are
// session-scoped, and the full re-clean a drift triggers Resets the recorder
// for its own run-level evidence.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.patterns = nil
	r.steps = nil
	r.questions = nil
	r.tuples = make(map[int]*Tuple)
	r.repairs = make(map[int]*RepairRecord)
	r.nextQID = 0
	r.rowUnit = nil
	r.dedup = false
}

// sortedUnits returns the keys of m ascending.
func sortedUnits[V any](m map[int]*V) []int {
	units := make([]int, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Ints(units)
	return units
}
