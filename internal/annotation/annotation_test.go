package annotation

import (
	"reflect"
	"testing"

	"katara/internal/crowd"
	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/table"
	"katara/internal/telemetry"
)

// The Fig. 1 / Fig. 2 scenario: t1 fully covered, t2 missing the
// S. Africa→Pretoria capital fact (true in the world), t3 asserting
// Italy→Madrid (false in the world).
type fixture struct {
	kb      *rdf.Store
	pat     *pattern.Pattern
	tbl     *table.Table
	country rdf.ID
	capital rdf.ID
	person  rdf.ID
	hasCap  rdf.ID
	nat     rdf.ID
}

func newFixture() *fixture {
	kb := rdf.New()
	add := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.IRI(obj)) }
	lit := func(sub, pred, obj string) { kb.AddFact(rdf.IRI(sub), rdf.IRI(pred), rdf.Lit(obj)) }
	for _, e := range []struct{ iri, typ, label string }{
		{"y:Rossi", "person", "Rossi"},
		{"y:Klate", "person", "Klate"},
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Italy", "country", "Italy"},
		{"y:SAfrica", "country", "S. Africa"},
		{"y:Rome", "capital", "Rome"},
		{"y:Pretoria", "capital", "Pretoria"},
		{"y:Madrid", "capital", "Madrid"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	add("y:Italy", "hasCapital", "y:Rome")
	add("y:Rossi", "nationality", "y:Italy")
	add("y:Klate", "nationality", "y:SAfrica")
	add("y:Pirlo", "nationality", "y:Italy")

	f := &fixture{
		kb:      kb,
		country: kb.Res("country"),
		capital: kb.Res("capital"),
		person:  kb.Res("person"),
		hasCap:  kb.Res("hasCapital"),
		nat:     kb.Res("nationality"),
	}
	f.pat = &pattern.Pattern{
		Nodes: []pattern.Node{
			{Column: 0, Type: f.person},
			{Column: 1, Type: f.country},
			{Column: 2, Type: f.capital},
		},
		Edges: []pattern.Edge{
			{From: 0, To: 1, Prop: f.nat},
			{From: 1, To: 2, Prop: f.hasCap},
		},
	}
	f.tbl = table.New("soccer", "A", "B", "C")
	f.tbl.Append("Rossi", "Italy", "Rome")
	f.tbl.Append("Klate", "S. Africa", "Pretoria")
	f.tbl.Append("Pirlo", "Italy", "Madrid")
	return f
}

// worldOracle knows the true world: S. Africa's capital is Pretoria; Italy's
// is Rome (not Madrid).
type worldOracle struct{ f *fixture }

func (o worldOracle) TypeHolds(value string, typ rdf.ID) bool { return true }
func (o worldOracle) RelHolds(subj string, prop rdf.ID, obj string) bool {
	if prop == o.f.hasCap {
		switch subj {
		case "S. Africa":
			return obj == "Pretoria"
		case "Italy":
			return obj == "Rome"
		}
		return false
	}
	return true
}

func newAnnotator(f *fixture, enrich bool) *Annotator {
	return &Annotator{
		KB:      f.kb,
		Pattern: f.pat,
		Crowd:   crowd.Perfect(5),
		Oracle:  worldOracle{f},
		Enrich:  enrich,
	}
}

func TestExample1Annotation(t *testing.T) {
	f := newFixture()
	res := newAnnotator(f, false).Annotate(f.tbl)
	if got := res.Tuples[0].Label; got != ValidatedByKB {
		t.Fatalf("t1 = %v, want validated-by-kb", got)
	}
	if got := res.Tuples[1].Label; got != ValidatedByCrowd {
		t.Fatalf("t2 = %v, want validated-by-kb-and-crowd", got)
	}
	if got := res.Tuples[2].Label; got != Erroneous {
		t.Fatalf("t3 = %v, want erroneous", got)
	}
	if rows := res.Errors(); len(rows) != 1 || rows[0] != 2 {
		t.Fatalf("Errors() = %v", rows)
	}
}

func TestNewFactGeneration(t *testing.T) {
	f := newFixture()
	res := newAnnotator(f, false).Annotate(f.tbl)
	if len(res.NewFacts) != 1 {
		t.Fatalf("NewFacts = %v", res.NewFacts)
	}
	fact := res.NewFacts[0]
	if fact.IsType || fact.Subject != "S. Africa" || fact.Object != "Pretoria" || fact.Prop != f.hasCap {
		t.Fatalf("unexpected fact %+v", fact)
	}
}

func TestErroneousTupleFactsNotTrusted(t *testing.T) {
	f := newFixture()
	res := newAnnotator(f, false).Annotate(f.tbl)
	for _, fact := range res.NewFacts {
		if fact.Subject == "Italy" && fact.Object == "Madrid" {
			t.Fatal("fact from erroneous tuple leaked into enrichment")
		}
	}
	if res.Tuples[2].NewFacts != nil {
		t.Fatal("erroneous tuple retained facts")
	}
}

func TestEnrichmentFeedsBackIntoKB(t *testing.T) {
	f := newFixture()
	// Duplicate the Klate tuple: with enrichment on, the second occurrence
	// must be validated by the KB alone (the Table 5 redundancy effect).
	f.tbl.Append("Klate", "S. Africa", "Pretoria")
	ann := newAnnotator(f, true)
	res := ann.Annotate(f.tbl)
	if res.Tuples[1].Label != ValidatedByCrowd {
		t.Fatalf("first occurrence = %v", res.Tuples[1].Label)
	}
	if res.Tuples[3].Label != ValidatedByKB {
		t.Fatalf("second occurrence = %v, want validated-by-kb after enrichment", res.Tuples[3].Label)
	}
	// The fact is now queryable in the KB.
	sa := f.kb.MatchLabel("S. Africa", 0.7)[0].Resource
	pret := f.kb.MatchLabel("Pretoria", 0.7)[0].Resource
	if !f.kb.Has(sa, f.hasCap, pret) {
		t.Fatal("enriched fact missing from KB")
	}
}

func TestWithoutEnrichmentCrowdAskedAgain(t *testing.T) {
	f := newFixture()
	f.tbl.Append("Klate", "S. Africa", "Pretoria")
	ann := newAnnotator(f, false)
	res := ann.Annotate(f.tbl)
	if res.Tuples[3].Label != ValidatedByCrowd {
		t.Fatalf("without enrichment second occurrence = %v", res.Tuples[3].Label)
	}
	// Crowd was consulted for both occurrences.
	if got := ann.Crowd.Stats().Questions; got < 2 {
		t.Fatalf("crowd asked %d questions, want ≥ 2", got)
	}
}

func TestMissingTypeNodeGoesToCrowd(t *testing.T) {
	f := newFixture()
	// A tuple with a player unknown to the KB but real in the world.
	f.tbl = table.New("soccer", "A", "B", "C")
	f.tbl.Append("Mokoena", "S. Africa", "Pretoria")
	ann := newAnnotator(f, true)
	res := ann.Annotate(f.tbl)
	if res.Tuples[0].Label != ValidatedByCrowd {
		t.Fatalf("label = %v", res.Tuples[0].Label)
	}
	// Facts: Mokoena:person type fact plus nationality and capital edges.
	if len(res.Tuples[0].NewFacts) != 3 {
		t.Fatalf("NewFacts = %+v", res.Tuples[0].NewFacts)
	}
	// Minted resource must now exist with the right type.
	hits := f.kb.MatchLabel("Mokoena", 0.7)
	if len(hits) == 0 || !f.kb.HasType(hits[0].Resource, f.person) {
		t.Fatal("enrichment did not mint a typed resource")
	}
}

func TestBreakdownFractions(t *testing.T) {
	f := newFixture()
	res := newAnnotator(f, false).Annotate(f.tbl)
	b := res.Breakdown
	// 3 tuples × 3 typed nodes: all KB-validated (Madrid is a capital even
	// though it's the wrong capital for Italy).
	if b.TypeKB != 9 || b.TypeCrowd != 0 || b.TypeError != 0 {
		t.Fatalf("type breakdown = %+v", b)
	}
	// 3 tuples × 2 edges: t1 both KB; t2 nationality KB + capital crowd;
	// t3 nationality KB + capital error.
	if b.RelKB != 4 || b.RelCrowd != 1 || b.RelError != 1 {
		t.Fatalf("rel breakdown = %+v", b)
	}
	kbf, crf, erf := b.RelFractions()
	if kbf < 0.66 || kbf > 0.67 || crf < 0.16 || erf < 0.16 {
		t.Fatalf("fractions = %f %f %f", kbf, crf, erf)
	}
}

func TestFractionsEmptyBreakdown(t *testing.T) {
	var b Breakdown
	if kb, cr, er := b.TypeFractions(); kb != 0 || cr != 0 || er != 0 {
		t.Fatal("empty breakdown must be all zeros")
	}
}

func TestLabelString(t *testing.T) {
	if ValidatedByKB.String() != "validated-by-kb" ||
		ValidatedByCrowd.String() != "validated-by-kb-and-crowd" ||
		Erroneous.String() != "erroneous" {
		t.Fatal("Label.String broken")
	}
}

func TestNoisyCrowdCanMislabel(t *testing.T) {
	// With a very unreliable crowd some clean-but-uncovered tuples get
	// labelled erroneous; the pipeline must stay consistent (facts from
	// those tuples dropped).
	f := newFixture()
	ann := newAnnotator(f, false)
	ann.Crowd = crowd.New(10, 0.55, 3)
	res := ann.Annotate(f.tbl)
	for _, ta := range res.Tuples {
		if ta.Label == Erroneous && ta.NewFacts != nil {
			t.Fatal("erroneous tuple carries facts")
		}
	}
}

// bigFixture widens the Fig. 1 table so the worker pool actually engages
// (precomputeMatches requires NumRows >= 2*Workers). Row order interleaves
// KB-covered, crowd-confirmable and erroneous tuples, including duplicates
// whose outcome depends on enrichment from earlier rows.
func bigFixture() *fixture {
	f := newFixture()
	f.tbl.Append("Klate", "S. Africa", "Pretoria") // KB-covered after enrichment
	f.tbl.Append("Rossi", "Italy", "Rome")
	f.tbl.Append("Pirlo", "Italy", "Madrid") // erroneous again
	f.tbl.Append("Klate", "S. Africa", "Pretoria")
	f.tbl.Append("Rossi", "Italy", "Rome")
	f.tbl.Append("Pirlo", "Italy", "Rome")
	f.tbl.Append("Klate", "S. Africa", "Pretoria")
	return f
}

func TestParallelAnnotationMatchesSerial(t *testing.T) {
	for _, enrich := range []bool{false, true} {
		// Fresh fixtures per run: with Enrich on, the annotator mutates
		// its KB, so serial and parallel must each start pristine.
		sf := bigFixture()
		serial := newAnnotator(sf, enrich)
		serialRes := serial.Annotate(sf.tbl)
		serialQ := serial.Crowd.Stats().Questions

		for _, workers := range []int{2, 4, 8} {
			pf := bigFixture()
			par := newAnnotator(pf, enrich)
			par.Workers = workers
			par.Telemetry = telemetry.New()
			parRes := par.Annotate(pf.tbl)
			if !reflect.DeepEqual(serialRes, parRes) {
				t.Fatalf("enrich=%v workers=%d: parallel result differs from serial\nserial: %+v\nparallel: %+v",
					enrich, workers, serialRes.Tuples, parRes.Tuples)
			}
			if q := par.Crowd.Stats().Questions; q != serialQ {
				t.Fatalf("enrich=%v workers=%d: %d crowd questions, serial asked %d",
					enrich, workers, q, serialQ)
			}
			if got := par.Telemetry.Get(telemetry.TuplesAnnotated); got != int64(pf.tbl.NumRows()) {
				t.Fatalf("TuplesAnnotated = %d, want %d", got, pf.tbl.NumRows())
			}
			if par.Telemetry.Get(telemetry.KBLookups) == 0 {
				t.Fatal("parallel run recorded no KB lookups")
			}
		}
	}
}

func TestSmallTableSkipsWorkerPool(t *testing.T) {
	f := newFixture() // 3 rows < 2*Workers, so precompute must bail out
	ann := newAnnotator(f, false)
	ann.Workers = 4
	if m := ann.precomputeMatches(f.tbl, 0.7); m != nil {
		t.Fatalf("precomputeMatches on a tiny table = %v, want nil", m)
	}
	res := ann.Annotate(f.tbl)
	if len(res.Tuples) != 3 {
		t.Fatalf("annotated %d tuples, want 3", len(res.Tuples))
	}
}
