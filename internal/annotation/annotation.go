// Package annotation implements KATARA's data annotation (§6.1): each tuple
// is checked against the validated table pattern — fully covered by the KB
// (correct), partially covered and confirmed by the crowd (correct, and a
// new fact enriches the KB), or contradicted by the crowd (erroneous).
package annotation

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"katara/internal/crowd"
	"katara/internal/pattern"
	"katara/internal/provenance"
	"katara/internal/rdf"
	"katara/internal/similarity"
	"katara/internal/table"
	"katara/internal/telemetry"
)

// Label classifies a tuple per §6.1.
type Label int

const (
	// ValidatedByKB: the tuple fully matches the pattern in the KB (case i).
	ValidatedByKB Label = iota
	// ValidatedByCrowd: the KB lacked coverage but the crowd confirmed every
	// missing piece (case ii).
	ValidatedByCrowd
	// Erroneous: the crowd rejected at least one missing piece (case iii).
	Erroneous
	// Unknown: the crowd could not be consulted (budget or deadline
	// exhausted) and the DegradeMarkUnknown policy is active. Unknown tuples
	// are neither trusted nor repaired.
	Unknown
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case ValidatedByKB:
		return "validated-by-kb"
	case ValidatedByCrowd:
		return "validated-by-kb-and-crowd"
	case Erroneous:
		return "erroneous"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// Fact is a statement confirmed by the crowd that was missing from the KB —
// the KB-enrichment by-product (§6.1).
type Fact struct {
	IsType  bool
	Subject string   // cell value
	Type    rdf.ID   // when IsType
	Prop    rdf.ID   // when !IsType and Path is empty
	Path    []rdf.ID // §9 multi-hop fact: the property chain
	Object  string   // cell value, when !IsType
}

// TupleAnnotation is the per-tuple outcome.
type TupleAnnotation struct {
	Row   int
	Label Label
	// NodeByKB[col] / EdgeByKB[i] / PathByKB[i] report which conditions the
	// KB covered.
	NodeByKB map[int]bool
	EdgeByKB []bool
	PathByKB []bool
	// NewFacts are the crowd-confirmed facts for this tuple.
	NewFacts []Fact
	// Degraded marks a label decided under a graceful-degradation policy
	// (the crowd was unreachable: budget or deadline exhausted).
	Degraded bool
}

// Breakdown aggregates Table 5's fractions over values and relationships.
type Breakdown struct {
	TypeKB, TypeCrowd, TypeError int
	RelKB, RelCrowd, RelError    int
}

// TypeFractions returns (kb, crowd, error) fractions over typed values.
func (b Breakdown) TypeFractions() (kb, cr, er float64) {
	n := float64(b.TypeKB + b.TypeCrowd + b.TypeError)
	if n == 0 {
		return 0, 0, 0
	}
	return float64(b.TypeKB) / n, float64(b.TypeCrowd) / n, float64(b.TypeError) / n
}

// RelFractions returns (kb, crowd, error) fractions over relationships.
func (b Breakdown) RelFractions() (kb, cr, er float64) {
	n := float64(b.RelKB + b.RelCrowd + b.RelError)
	if n == 0 {
		return 0, 0, 0
	}
	return float64(b.RelKB) / n, float64(b.RelCrowd) / n, float64(b.RelError) / n
}

// Result is the outcome of annotating a table.
type Result struct {
	Tuples    []TupleAnnotation
	Breakdown Breakdown
	NewFacts  []Fact // deduplicated KB-enrichment facts
	// DegradedTuples counts tuples whose label was decided under a
	// graceful-degradation policy.
	DegradedTuples int
}

// Errors returns the rows labelled Erroneous.
func (r *Result) Errors() []int {
	var out []int
	for _, t := range r.Tuples {
		if t.Label == Erroneous {
			out = append(out, t.Row)
		}
	}
	return out
}

// FactOracle supplies real-world ground truth for the simulated crowd.
type FactOracle interface {
	// TypeHolds reports whether value truly is an instance of typ.
	TypeHolds(value string, typ rdf.ID) bool
	// RelHolds reports whether prop truly relates subj to obj.
	RelHolds(subj string, prop rdf.ID, obj string) bool
}

// PathOracle is optionally implemented by fact oracles that can verify the
// §9 multi-hop path facts. Oracles without it refute path facts.
type PathOracle interface {
	PathHolds(subj string, props []rdf.ID, obj string) bool
}

// DegradePolicy selects what happens to a tuple when the crowd can no
// longer be consulted (question budget or run deadline exhausted).
type DegradePolicy int

const (
	// DegradeTrustKB treats unanswered checks as KB incompleteness: the
	// tuple is accepted (ValidatedByCrowd, flagged Degraded), but no new
	// facts are minted from the unverified claims.
	DegradeTrustKB DegradePolicy = iota
	// DegradeMarkUnknown labels unanswered tuples Unknown: they are neither
	// trusted, enriched from, nor repaired.
	DegradeMarkUnknown
)

// String implements fmt.Stringer.
func (d DegradePolicy) String() string {
	switch d {
	case DegradeTrustKB:
		return "trust-kb"
	case DegradeMarkUnknown:
		return "mark-unknown"
	default:
		return fmt.Sprintf("DegradePolicy(%d)", int(d))
	}
}

// Annotator annotates tables against one validated pattern.
type Annotator struct {
	KB      *rdf.Store
	Pattern *pattern.Pattern
	Crowd   *crowd.Crowd
	Oracle  FactOracle
	// Ctx bounds the crowd interaction (nil = context.Background()); an
	// expired deadline triggers the Degrade policy for remaining tuples.
	Ctx context.Context
	// Degrade picks the policy for tuples whose crowd questions went
	// unanswered (budget or deadline exhausted).
	Degrade DegradePolicy
	// Threshold is the label-similarity threshold (default 0.7).
	Threshold float64
	// Enrich adds crowd-confirmed facts to the KB immediately, so later
	// occurrences of the same value validate without the crowd — the effect
	// that makes RelationalTables' KB share high in Table 5.
	Enrich bool
	// Workers fans the per-tuple KB-coverage evaluation (step 1 of §6.1)
	// out over a worker pool; <= 1 evaluates serially. Crowd questions are
	// always issued serially in row order, so question budgets, majority
	// votes and enrichment stay deterministic: results are identical for
	// every worker count. Once enrichment mutates the KB, precomputed
	// coverage is stale and later rows are re-evaluated serially.
	Workers int
	// Telemetry receives the TuplesAnnotated / KBLookups / CrowdQuestions
	// counters; nil disables instrumentation.
	Telemetry *telemetry.Pipeline
	// Resolver, when non-nil, handles label resolution instead of direct
	// KB.MatchLabel calls — typically the resolve.Cache shared with discovery
	// and repair. It must resolve against the same KB; enrichment mutations
	// are picked up through the store's label generation, so cached coverage
	// stays consistent with direct evaluation.
	Resolver pattern.LabelSource
	// Interned, when non-nil, is the distinct-signature view of the table
	// being annotated (it must have been built from the same rows). Step-1
	// KB coverage is then evaluated once per distinct signature and fanned
	// out to duplicate rows, and crowd questions are memoized so one
	// question answers every duplicate. Annotation outcomes are identical
	// with or without it; only the question count (and therefore crowd cost)
	// drops. The memo lives for one Annotate/AnnotateWith call.
	Interned *table.Interned

	// Prov records each tuple's evidence lineage — the KB facts that
	// matched, the crowd checks issued and their question IDs, the verdict;
	// nil disables. Evidence is recorded per decision unit (the signature
	// group under dedup, the row otherwise) and fanned out on read.
	Prov *provenance.Recorder

	// Session, when non-nil, carries annotation memo state across passes:
	// the crowd-answer memo, the seen-facts set behind NewFacts dedup and
	// the per-signature coverage memo all live in the Session instead of
	// the single pass. Incremental cleaning annotates appended rows through
	// AnnotateRange with the Session of the base run, which makes the delta
	// pass behave exactly like the suffix of one long batch pass: a delta
	// row whose signature (or question) was already decided fans the cached
	// verdict, and facts already reported are not re-listed.
	Session *Session

	// qmemo caches crowd answers within one AnnotateWith pass (dedup mode
	// only). Keyed by prompt AND ground truth: two distinct KB terms can
	// share a display label, yielding identical prompts with different
	// truths. Degraded (unanswered) outcomes are never memoized — budget
	// and deadline exhaustion are transient, not properties of the question.
	qmemo map[questionKey]memoAnswer

	// provUnit is the decision unit the current tuple's evidence is
	// recorded under; negative while recording is off (disabled recorder,
	// or a duplicate row whose unit already carries a settled record).
	provUnit int
}

// questionKey identifies one crowd check for the dedup memo.
type questionKey struct {
	prompt string
	holds  bool
}

// memoAnswer is one memoized crowd answer plus the provenance ID of the
// question that produced it, so duplicate rows' evidence chains reference
// the original question.
type memoAnswer struct {
	yes bool
	qid int64
}

// Session is the annotation memo state shared by the passes of one
// incremental cleaning session (see Annotator.Session). The zero value is
// ready to use.
type Session struct {
	qmemo     map[questionKey]memoAnswer
	seenFacts map[string]bool
	covMemo   []*pattern.Match
}

// labels returns the label-resolution source: the shared resolver when
// configured, the KB itself otherwise.
func (a *Annotator) labels() pattern.LabelSource {
	if a.Resolver != nil {
		return a.Resolver
	}
	return a.KB
}

// Annotate labels every tuple of tbl.
func (a *Annotator) Annotate(tbl *table.Table) *Result {
	threshold := a.Threshold
	if threshold == 0 {
		threshold = similarity.DefaultThreshold
	}
	return a.AnnotateWith(tbl, a.precomputeMatches(tbl, threshold))
}

// EvaluateCoverage evaluates the step-1 KB coverage (§6.1) of rows
// [lo, hi) into out, which must have length tbl.NumRows(). Coverage is a
// pure function of the (read-only) KB, the pattern and the tuple, so
// disjoint ranges may be evaluated concurrently — this is the per-shard
// entry point of a row-range sharded run. tel receives the KBLookups
// counter and may be a shard-local pipeline merged by the caller. Call
// KB.WarmClosures() before fanning out: the lazily-memoised hierarchy
// closures must not be forced by racing workers.
func (a *Annotator) EvaluateCoverage(tbl *table.Table, lo, hi int, out []*pattern.Match, tel *telemetry.Pipeline) {
	threshold := a.Threshold
	if threshold == 0 {
		threshold = similarity.DefaultThreshold
	}
	labels := a.labels()
	if hi > tbl.NumRows() {
		hi = tbl.NumRows()
	}
	for i := lo; i < hi; i++ {
		tel.Inc(telemetry.KBLookups)
		out[i] = pattern.EvaluateWith(a.Pattern, a.KB, labels, tbl.Rows[i], threshold)
	}
}

// EvaluateCoverageGroups is EvaluateCoverage over distinct-signature groups:
// groups [lo, hi) of the interned view's group list are evaluated once via
// their representative row and the resulting Match fanned out to every
// member row of out (which must have length tbl.NumRows()). Coverage is a
// pure function of the tuple's values, so duplicate rows share the verdict —
// and safely share the *pattern.Match itself, which every consumer treats as
// read-only. Disjoint group ranges may run concurrently, exactly like
// EvaluateCoverage's row ranges.
func (a *Annotator) EvaluateCoverageGroups(tbl *table.Table, groups []table.Group, lo, hi int, out []*pattern.Match, tel *telemetry.Pipeline) {
	threshold := a.Threshold
	if threshold == 0 {
		threshold = similarity.DefaultThreshold
	}
	labels := a.labels()
	if hi > len(groups) {
		hi = len(groups)
	}
	for g := lo; g < hi; g++ {
		gr := groups[g]
		tel.Inc(telemetry.KBLookups)
		m := pattern.EvaluateWith(a.Pattern, a.KB, labels, tbl.Rows[gr.Rep], threshold)
		for _, row := range gr.Rows {
			out[row] = m
		}
	}
}

// AnnotateWith labels every tuple of tbl, with the step-1 KB coverage
// optionally precomputed in matches (nil = evaluate inline per row; the
// coverage of row i, when present, must be matches[i]). Step 2 — crowd
// consultation and enrichment — always runs serially in row order
// regardless of how matches was produced, which is the shard-determinism
// argument: a sharded run fans only the KB-pure coverage evaluation out and
// feeds this same serial pass, so its report is byte-identical to the
// unsharded run's. Once enrichment mutates the KB the precomputed coverage
// is stale and later rows are re-evaluated inline.
func (a *Annotator) AnnotateWith(tbl *table.Table, matches []*pattern.Match) *Result {
	return a.AnnotateRange(tbl, matches, 0, tbl.NumRows())
}

// AnnotateRange is AnnotateWith restricted to rows [lo, hi) — the
// incremental entry point: an append pass annotates only the delta rows,
// with the Session carrying the base run's memo state so the pass is
// observationally the suffix of one batch run over the merged table.
func (a *Annotator) AnnotateRange(tbl *table.Table, matches []*pattern.Match, lo, hi int) *Result {
	threshold := a.Threshold
	if threshold == 0 {
		threshold = similarity.DefaultThreshold
	}
	res := &Result{}
	seenFacts := map[string]bool{}
	if a.Session != nil {
		if a.Session.seenFacts == nil {
			a.Session.seenFacts = make(map[string]bool)
		}
		seenFacts = a.Session.seenFacts
	}
	enriched := false // KB mutated: precomputed coverage is stale
	// Dedup mode: coverage memoized per distinct signature (invalidated
	// whenever enrichment mutates the KB — a changed KB can change any
	// signature's coverage) and crowd answers memoized per question for the
	// duration of the pass (or the session, when one is attached). Outcomes
	// are identical either way; only the question count drops.
	in := a.Interned
	if in != nil && in.NumRows() != tbl.NumRows() {
		in = nil // view built from different rows: ignore it
	}
	var covMemo []*pattern.Match
	if in != nil {
		if a.Session != nil {
			if len(a.Session.covMemo) < in.NumGroups() {
				grown := make([]*pattern.Match, in.NumGroups())
				copy(grown, a.Session.covMemo)
				a.Session.covMemo = grown
			}
			covMemo = a.Session.covMemo
			if a.Session.qmemo == nil {
				a.Session.qmemo = make(map[questionKey]memoAnswer)
			}
			a.qmemo = a.Session.qmemo
		} else {
			covMemo = make([]*pattern.Match, in.NumGroups())
			a.qmemo = make(map[questionKey]memoAnswer)
		}
		defer func() { a.qmemo = nil }()
	}
	if hi > tbl.NumRows() {
		hi = tbl.NumRows()
	}
	a.provUnit = -1
	for row := lo; row < hi; row++ {
		// One scoped span per tuple: the crowd-question spans issued inside
		// annotateTuple (serially, on this goroutine) attach as its children.
		tStart := a.Telemetry.StartTimer()
		tSpan := a.Telemetry.PushSpan("annotate-tuple")
		var m *pattern.Match
		if matches != nil && !enriched {
			m = matches[row]
		}
		gi := -1
		if m == nil && in != nil {
			gi = in.GroupOf(row)
			m = covMemo[gi]
		}
		if m == nil {
			a.Telemetry.Inc(telemetry.KBLookups)
			m = pattern.EvaluateWith(a.Pattern, a.KB, a.labels(), tbl.Rows[row], threshold)
			if gi >= 0 {
				covMemo[gi] = m
			}
		}
		// Provenance is recorded once per decision unit: the first row of a
		// signature group writes the unit's evidence, duplicates share it on
		// read. A degraded record is retried — degradation is a property of
		// the run's remaining budget, not of the signature.
		a.provUnit = -1
		if a.Prov.Enabled() {
			unit := row
			if in != nil {
				unit = in.GroupOf(row)
			}
			if a.Prov.BeginTuple(unit) {
				a.provUnit = unit
			}
		}
		ta, applied := a.annotateTuple(tbl, row, m)
		if a.provUnit >= 0 {
			a.Prov.RecordVerdict(a.provUnit, ta.Label.String(), ta.Degraded, m.Full)
		}
		if applied {
			enriched = true
			// The KB changed: every memoized coverage verdict is stale.
			clear(covMemo)
		}
		tSpan.SetInt("row", int64(row))
		tSpan.SetStr("label", ta.Label.String())
		tSpan.End()
		a.Telemetry.ObserveSince(telemetry.HistAnnotateTuple, tStart)
		a.Telemetry.Inc(telemetry.TuplesAnnotated)
		if ta.Degraded {
			res.DegradedTuples++
			a.Telemetry.Inc(telemetry.DegradedDecisions)
		}
		res.Tuples = append(res.Tuples, ta)
		for _, f := range ta.NewFacts {
			k := factKey(f)
			if !seenFacts[k] {
				seenFacts[k] = true
				res.NewFacts = append(res.NewFacts, f)
			}
		}
		// Table 5 accounting. Unknown tuples are excluded: nothing about
		// them was established by either the KB or the crowd.
		if ta.Label == Unknown {
			continue
		}
		for _, n := range a.Pattern.Nodes {
			if n.Type == rdf.NoID {
				continue
			}
			switch {
			case ta.NodeByKB[n.Column]:
				res.Breakdown.TypeKB++
			case ta.Label == Erroneous:
				res.Breakdown.TypeError++
			default:
				res.Breakdown.TypeCrowd++
			}
		}
		for i := range a.Pattern.Edges {
			switch {
			case ta.EdgeByKB[i]:
				res.Breakdown.RelKB++
			case ta.Label == Erroneous:
				res.Breakdown.RelError++
			default:
				res.Breakdown.RelCrowd++
			}
		}
		for i := range a.Pattern.Paths {
			switch {
			case ta.PathByKB[i]:
				res.Breakdown.RelKB++
			case ta.Label == Erroneous:
				res.Breakdown.RelError++
			default:
				res.Breakdown.RelCrowd++
			}
		}
	}
	return res
}

// ctx resolves the annotator's context.
func (a *Annotator) ctx() context.Context {
	if a.Ctx != nil {
		return a.Ctx
	}
	return context.Background()
}

// ask consults the crowd for one boolean check. degraded reports that the
// crowd was unreachable (budget or deadline exhausted): under
// DegradeTrustKB the check counts as confirmed (but unverified), under
// DegradeMarkUnknown the caller must mark the tuple Unknown.
//
// In dedup mode (qmemo active) a repeated question — a duplicate row's
// identical check — is answered from the memo without consuming crowd
// budget. Only answers the crowd actually delivered are memoized; a
// degraded outcome is a property of the run's remaining budget, not of the
// question, so it is re-attempted every time.
// qid is the provenance ID of the question that decided the check (the
// memoized original on a memo hit; 0 when provenance is disabled) and memo
// reports a memo hit.
func (a *Annotator) ask(prompt string, holds bool) (confirmed, degraded bool, qid int64, memo bool) {
	if a.qmemo != nil {
		if ans, ok := a.qmemo[questionKey{prompt, holds}]; ok {
			a.Telemetry.Inc(telemetry.CrowdQuestionsDeduped)
			return ans.yes, false, ans.qid, true
		}
	}
	yes, err := a.Crowd.AskBooleanContext(a.ctx(), prompt, holds)
	qid = a.Prov.LastQuestionID()
	if err != nil {
		return a.Degrade == DegradeTrustKB, true, qid, false
	}
	if a.qmemo != nil {
		a.qmemo[questionKey{prompt, holds}] = memoAnswer{yes: yes, qid: qid}
	}
	return yes, false, qid, false
}

// recordCheck records one evidence check for the current decision unit.
// c1/c2 are the concerned columns (-1 = absent).
func (a *Annotator) recordCheck(kind string, c1, c2 int, desc string, qid int64, source string, confirmed bool) {
	if a.provUnit < 0 || !a.Prov.Enabled() {
		return
	}
	var cols []int
	if c1 >= 0 {
		cols = append(cols, c1)
	}
	if c2 >= 0 {
		cols = append(cols, c2)
	}
	a.Prov.RecordCheck(a.provUnit, kind, source, cols, desc, qid, confirmed)
}

// recordKBEvidence records the pattern pieces the KB itself covered for the
// current tuple — the "validated by KB" half of the evidence chain.
func (a *Annotator) recordKBEvidence(tuple []string, m *pattern.Match) {
	for _, n := range a.Pattern.Nodes {
		if n.Type == rdf.NoID || !m.NodeOK[n.Column] || n.Column >= len(tuple) {
			continue
		}
		desc := fmt.Sprintf("%q is a %s", tuple[n.Column], a.KB.LabelOf(n.Type))
		a.recordCheck("node", n.Column, -1, desc, 0, "kb", true)
	}
	for i, e := range a.Pattern.Edges {
		if !m.EdgeOK[i] || e.From >= len(tuple) || e.To >= len(tuple) {
			continue
		}
		desc := fmt.Sprintf("%q %s %q", tuple[e.From], a.KB.LabelOf(e.Prop), tuple[e.To])
		a.recordCheck("edge", e.From, e.To, desc, 0, "kb", true)
	}
	for i, pe := range a.Pattern.Paths {
		if !m.PathOK[i] || pe.From >= len(tuple) || pe.To >= len(tuple) {
			continue
		}
		desc := fmt.Sprintf("%q relates to %q through %s",
			tuple[pe.From], tuple[pe.To], pathLabel(a.KB, pe.Props))
		a.recordCheck("path", pe.From, pe.To, desc, 0, "kb", true)
	}
}

func factKey(f Fact) string {
	if f.IsType {
		return fmt.Sprintf("t|%s|%d", similarity.Normalize(f.Subject), f.Type)
	}
	if len(f.Path) > 0 {
		return fmt.Sprintf("p|%s|%v|%s", similarity.Normalize(f.Subject), f.Path, similarity.Normalize(f.Object))
	}
	return fmt.Sprintf("r|%s|%d|%s", similarity.Normalize(f.Subject), f.Prop, similarity.Normalize(f.Object))
}

// precomputeMatches evaluates every tuple's KB coverage (step 1 of §6.1)
// concurrently — the stage the paper distributes, since coverage queries are
// independent per tuple. Returns nil when the pool would not pay off; the
// caller then evaluates serially. The workers only read the KB, so the
// lazily-memoised hierarchy closures are forced up front (the annotation
// analogue of kbstats.Stats.Prewarm).
func (a *Annotator) precomputeMatches(tbl *table.Table, threshold float64) []*pattern.Match {
	n := tbl.NumRows()
	in := a.Interned
	if in != nil && in.NumRows() != n {
		in = nil
	}
	// Under dedup the work unit is the distinct signature, not the row:
	// a heavily duplicated table with few signatures is not worth a pool
	// (AnnotateWith's per-signature memo covers it serially).
	units := n
	if in != nil {
		units = in.NumGroups()
	}
	if a.Workers <= 1 || units < 2*a.Workers {
		return nil
	}
	a.KB.WarmClosures()
	labels := a.labels()
	matches := make([]*pattern.Match, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < a.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= units {
					return
				}
				a.Telemetry.Inc(telemetry.KBLookups)
				if in != nil {
					gr := in.Group(i)
					m := pattern.EvaluateWith(a.Pattern, a.KB, labels, tbl.Rows[gr.Rep], threshold)
					for _, row := range gr.Rows {
						matches[row] = m
					}
				} else {
					matches[i] = pattern.EvaluateWith(a.Pattern, a.KB, labels, tbl.Rows[i], threshold)
				}
			}
		}()
	}
	wg.Wait()
	return matches
}

// annotateTuple runs §6.1's two steps for one tuple, with the step-1 KB
// coverage m already evaluated (possibly by the worker pool). The second
// return reports whether enrichment actually mutated the KB.
func (a *Annotator) annotateTuple(tbl *table.Table, row int, m *pattern.Match) (TupleAnnotation, bool) {
	ta := TupleAnnotation{Row: row, NodeByKB: map[int]bool{}}
	tuple := tbl.Rows[row]

	for col, ok := range m.NodeOK {
		ta.NodeByKB[col] = ok
	}
	ta.EdgeByKB = append([]bool(nil), m.EdgeOK...)
	ta.PathByKB = append([]bool(nil), m.PathOK...)
	if a.provUnit >= 0 {
		a.recordKBEvidence(tuple, m)
	}
	if m.Full {
		ta.Label = ValidatedByKB
		return ta, false
	}

	// Step 2: validation by KB + crowd for each missing node and edge. The
	// crowd can become unreachable mid-tuple (budget/deadline exhausted);
	// confirm then applies the degradation policy: trust-KB answers "yes"
	// without minting a fact, mark-unknown aborts the tuple.
	unknown := false
	confirm := func(kind string, c1, c2 int, prompt string, holds bool) (confirmed, verified bool) {
		if unknown {
			return false, false
		}
		yes, degraded, qid, memo := a.ask(prompt, holds)
		if degraded {
			ta.Degraded = true
			if a.Degrade == DegradeMarkUnknown {
				unknown = true
				confirmed, verified = false, false
			} else {
				confirmed, verified = true, false
			}
		} else {
			confirmed, verified = yes, yes
		}
		if a.provUnit >= 0 {
			source := "crowd"
			switch {
			case degraded:
				source = "degraded"
			case memo:
				source = "memo"
			}
			a.recordCheck(kind, c1, c2, prompt, qid, source, confirmed)
		}
		return confirmed, verified
	}
	allConfirmed := true
	for _, n := range a.Pattern.Nodes {
		if unknown {
			break
		}
		if n.Type == rdf.NoID || m.NodeOK[n.Column] || n.Column >= len(tuple) {
			continue
		}
		val := tuple[n.Column]
		holds := a.Oracle != nil && a.Oracle.TypeHolds(val, n.Type)
		prompt := fmt.Sprintf("Is %q a %s?", val, a.KB.LabelOf(n.Type))
		confirmed, verified := confirm("node", n.Column, -1, prompt, holds)
		if verified {
			ta.NewFacts = append(ta.NewFacts, Fact{IsType: true, Subject: val, Type: n.Type})
		}
		if !confirmed && !unknown {
			allConfirmed = false
		}
	}
	for i, e := range a.Pattern.Edges {
		if unknown {
			break
		}
		if m.EdgeOK[i] || e.From >= len(tuple) || e.To >= len(tuple) {
			continue
		}
		sv, ov := tuple[e.From], tuple[e.To]
		holds := a.Oracle != nil && a.Oracle.RelHolds(sv, e.Prop, ov)
		prompt := fmt.Sprintf("Does %q %s %q?", sv, a.KB.LabelOf(e.Prop), ov)
		confirmed, verified := confirm("edge", e.From, e.To, prompt, holds)
		if verified {
			ta.NewFacts = append(ta.NewFacts, Fact{Subject: sv, Prop: e.Prop, Object: ov})
		}
		if !confirmed && !unknown {
			allConfirmed = false
		}
	}

	for i, pe := range a.Pattern.Paths {
		if unknown {
			break
		}
		if m.PathOK[i] || pe.From >= len(tuple) || pe.To >= len(tuple) {
			continue
		}
		sv, ov := tuple[pe.From], tuple[pe.To]
		holds := false
		if po, ok := a.Oracle.(PathOracle); ok {
			holds = po.PathHolds(sv, pe.Props, ov)
		}
		prompt := fmt.Sprintf("Is %q related to %q through %s?",
			sv, ov, pathLabel(a.KB, pe.Props))
		confirmed, verified := confirm("path", pe.From, pe.To, prompt, holds)
		if verified {
			ta.NewFacts = append(ta.NewFacts, Fact{Subject: sv, Path: pe.Props, Object: ov})
		}
		if !confirmed && !unknown {
			allConfirmed = false
		}
	}

	// The KB failed to validate the tuple as a whole, so edges that appear
	// to hold individually cannot be trusted either: with ambiguous labels
	// an edge can "hold" through candidate resources inconsistent with the
	// rest of the tuple (e.g. a fuzzy-matched homonym club grounded in the
	// claimed city). Every such edge is verified by the crowd before the
	// tuple is accepted.
	if allConfirmed && !unknown {
		for i, e := range a.Pattern.Edges {
			if unknown {
				break
			}
			if !m.EdgeOK[i] || e.From >= len(tuple) || e.To >= len(tuple) {
				continue // missing edges were already asked above
			}
			sv, ov := tuple[e.From], tuple[e.To]
			holds := a.Oracle != nil && a.Oracle.RelHolds(sv, e.Prop, ov)
			prompt := fmt.Sprintf("Does %q %s %q?", sv, a.KB.LabelOf(e.Prop), ov)

			if confirmed, _ := confirm("recheck", e.From, e.To, prompt, holds); !confirmed && !unknown {
				allConfirmed = false
				ta.EdgeByKB[i] = false
			}
		}
	}

	if unknown {
		ta.Label = Unknown
		ta.NewFacts = nil // nothing about the tuple was established
		return ta, false
	}

	applied := false
	if allConfirmed {
		ta.Label = ValidatedByCrowd
		if a.Enrich {
			for _, f := range ta.NewFacts {
				if a.apply(f) {
					applied = true
				}
			}
		}
	} else {
		ta.Label = Erroneous
		ta.NewFacts = nil // facts from an erroneous tuple are not trusted
	}
	return ta, applied
}

func pathLabel(kb *rdf.Store, props []rdf.ID) string {
	parts := make([]string, len(props))
	for i, p := range props {
		parts[i] = kb.LabelOf(p)
	}
	return strings.Join(parts, " then ")
}

// apply adds a confirmed fact to the KB, minting resources as needed, and
// reports whether the KB actually changed (a duplicate fact leaves it
// untouched). Multi-hop path facts are not applied: asserting the chain
// would require inventing the intermediate resource, which is §9's open
// "extending the structure of the KBs" problem.
func (a *Annotator) apply(f Fact) bool {
	if len(f.Path) > 0 {
		return false
	}
	kb := a.KB
	subj, minted := a.resourceFor(f.Subject)
	if f.IsType {
		return kb.Add(subj, kb.TypeID, f.Type) || minted
	}
	obj, mintedObj := a.resourceFor(f.Object)
	return kb.Add(subj, f.Prop, obj) || minted || mintedObj
}

// resourceFor finds the best existing resource labelled like value, or mints
// a new one carrying the value as its label. The second return reports
// whether a resource was minted — a KB mutation in its own right, since the
// new exact-match label changes later MatchLabel results.
func (a *Annotator) resourceFor(value string) (rdf.ID, bool) {
	threshold := a.Threshold
	if threshold == 0 {
		threshold = similarity.DefaultThreshold
	}
	if hits := a.labels().MatchLabel(value, threshold); len(hits) > 0 {
		return hits[0].Resource, false
	}
	r := a.KB.Res("enriched:" + similarity.Normalize(value))
	a.KB.AddFact(a.KB.Term(r), rdf.IRI(rdf.IRILabel), rdf.Lit(value))
	return r, true
}
