package annotation

import (
	"testing"

	"katara/internal/crowd"
	"katara/internal/pattern"
	"katara/internal/rdf"
	"katara/internal/table"
)

// pathKB: persons → (bornIn) → cities → (locatedIn) → countries, with one
// chain missing from the KB (Xavi's city has no locatedIn fact).
func pathFixture() (*rdf.Store, *pattern.Pattern, *table.Table) {
	kb := rdf.New()
	add := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.IRI(o)) }
	lit := func(s, p, o string) { kb.AddFact(rdf.IRI(s), rdf.IRI(p), rdf.Lit(o)) }
	for _, e := range []struct{ iri, typ, label string }{
		{"y:Pirlo", "person", "Pirlo"},
		{"y:Xavi", "person", "Xavi"},
		{"y:Zidane", "person", "Zidane"},
		{"y:Flero", "city", "Flero"},
		{"y:Terrassa", "city", "Terrassa"},
		{"y:Marseille", "city", "Marseille"},
		{"y:Italy", "country", "Italy"},
		{"y:Spain", "country", "Spain"},
		{"y:France", "country", "France"},
	} {
		add(e.iri, rdf.IRIType, e.typ)
		lit(e.iri, rdf.IRILabel, e.label)
	}
	add("y:Pirlo", "bornIn", "y:Flero")
	add("y:Xavi", "bornIn", "y:Terrassa")
	add("y:Zidane", "bornIn", "y:Marseille")
	add("y:Flero", "locatedIn", "y:Italy")
	// Terrassa -> Spain deliberately missing (KB incompleteness).
	add("y:Marseille", "locatedIn", "y:France")

	p := &pattern.Pattern{
		Nodes: []pattern.Node{
			{Column: 0, Type: kb.Res("person")},
			{Column: 1, Type: kb.Res("country")},
		},
		Paths: []pattern.PathEdge{{
			From: 0, To: 1,
			Props: []rdf.ID{kb.Res("bornIn"), kb.Res("locatedIn")},
		}},
	}
	tbl := table.New("t", "A", "B")
	tbl.Append("Pirlo", "Italy")
	tbl.Append("Xavi", "Spain")   // chain missing from KB, true in world
	tbl.Append("Zidane", "Spain") // chain false: Zidane reaches France
	return kb, p, tbl
}

// chainOracle knows the real birth countries.
type chainOracle struct{}

func (chainOracle) TypeHolds(string, rdf.ID) bool        { return true }
func (chainOracle) RelHolds(string, rdf.ID, string) bool { return true }
func (chainOracle) PathHolds(subj string, props []rdf.ID, obj string) bool {
	truth := map[string]string{"Pirlo": "Italy", "Xavi": "Spain", "Zidane": "France"}
	return truth[subj] == obj
}

func TestPathAnnotation(t *testing.T) {
	kb, p, tbl := pathFixture()
	ann := &Annotator{KB: kb, Pattern: p, Crowd: crowd.Perfect(3), Oracle: chainOracle{}}
	res := ann.Annotate(tbl)
	if res.Tuples[0].Label != ValidatedByKB {
		t.Fatalf("Pirlo = %v, want validated-by-kb", res.Tuples[0].Label)
	}
	if res.Tuples[1].Label != ValidatedByCrowd {
		t.Fatalf("Xavi = %v, want crowd-validated (KB gap)", res.Tuples[1].Label)
	}
	if res.Tuples[2].Label != Erroneous {
		t.Fatalf("Zidane = %v, want erroneous", res.Tuples[2].Label)
	}
	// The confirmed chain becomes a path fact (not applied to the KB).
	if len(res.NewFacts) != 1 || len(res.NewFacts[0].Path) != 2 {
		t.Fatalf("NewFacts = %+v", res.NewFacts)
	}
	// Path facts are never asserted into the KB even with Enrich on.
	before := kb.NumTriples()
	ann2 := &Annotator{KB: kb, Pattern: p, Crowd: crowd.Perfect(3), Oracle: chainOracle{}, Enrich: true}
	ann2.Annotate(tbl)
	if kb.NumTriples() != before {
		t.Fatal("path facts must not be asserted into the KB")
	}
}

func TestPathBreakdownCountsAsRelationship(t *testing.T) {
	kb, p, tbl := pathFixture()
	ann := &Annotator{KB: kb, Pattern: p, Crowd: crowd.Perfect(3), Oracle: chainOracle{}}
	res := ann.Annotate(tbl)
	b := res.Breakdown
	// 3 tuples × 1 path: Pirlo KB, Xavi crowd, Zidane error.
	if b.RelKB != 1 || b.RelCrowd != 1 || b.RelError != 1 {
		t.Fatalf("breakdown = %+v", b)
	}
}

// oracleWithoutPaths implements only the base FactOracle: path facts must
// then be refuted.
type oracleWithoutPaths struct{}

func (oracleWithoutPaths) TypeHolds(string, rdf.ID) bool        { return true }
func (oracleWithoutPaths) RelHolds(string, rdf.ID, string) bool { return true }

func TestPathOracleOptional(t *testing.T) {
	kb, p, tbl := pathFixture()
	ann := &Annotator{KB: kb, Pattern: p, Crowd: crowd.Perfect(3), Oracle: oracleWithoutPaths{}}
	res := ann.Annotate(tbl)
	// Xavi's missing chain cannot be verified without a PathOracle: refuted.
	if res.Tuples[1].Label != Erroneous {
		t.Fatalf("Xavi = %v, want erroneous under a path-less oracle", res.Tuples[1].Label)
	}
	// Pirlo's chain is in the KB: unaffected.
	if res.Tuples[0].Label != ValidatedByKB {
		t.Fatalf("Pirlo = %v", res.Tuples[0].Label)
	}
}
