package annotation

import (
	"reflect"
	"strings"
	"testing"

	"katara/internal/pattern"
	"katara/internal/telemetry"
)

// TestEvaluateCoverageMatchesInline: the per-shard coverage entry point must
// produce exactly the matches the serial annotator evaluates inline —
// AnnotateWith over the precomputed slice equals Annotate from scratch.
func TestEvaluateCoverageMatchesInline(t *testing.T) {
	f := newFixture()
	tel := telemetry.New()

	ann := newAnnotator(f, false)
	out := make([]*pattern.Match, f.tbl.NumRows())
	ann.EvaluateCoverage(f.tbl, 0, f.tbl.NumRows(), out, tel)
	for i, m := range out {
		if m == nil {
			t.Fatalf("row %d: nil match", i)
		}
	}
	if got := tel.Get(telemetry.KBLookups); got != int64(f.tbl.NumRows()) {
		t.Fatalf("KBLookups = %d, want one per row (%d)", got, f.tbl.NumRows())
	}

	withPre := newAnnotator(newFixture(), false).AnnotateWith(f.tbl, out)
	inline := newAnnotator(newFixture(), false).Annotate(f.tbl)
	if !reflect.DeepEqual(withPre, inline) {
		t.Fatalf("AnnotateWith(precomputed) differs from inline Annotate\npre:    %+v\ninline: %+v",
			withPre.Tuples, inline.Tuples)
	}
}

// TestEvaluateCoverageClampsRange: an out-of-bounds hi is clamped to the
// table, leaving rows outside [lo, hi) untouched.
func TestEvaluateCoverageClampsRange(t *testing.T) {
	f := newFixture()
	ann := newAnnotator(f, false)
	out := make([]*pattern.Match, f.tbl.NumRows())
	ann.EvaluateCoverage(f.tbl, 1, 100, out, telemetry.New())
	if out[0] != nil {
		t.Fatal("row 0 outside [1, hi) was evaluated")
	}
	for i := 1; i < f.tbl.NumRows(); i++ {
		if out[i] == nil {
			t.Fatalf("row %d inside the clamped range not evaluated", i)
		}
	}
}

// TestEvaluateCoverageGroups: duplicate rows share one evaluation — the
// group variant evaluates each signature's representative once and fans the
// *same* Match out to every member, matching the per-row variant's verdicts.
func TestEvaluateCoverageGroups(t *testing.T) {
	f := newFixture()
	// Duplicate every fixture row once so groups have 2 members each.
	n := f.tbl.NumRows()
	for i := 0; i < n; i++ {
		f.tbl.Append(f.tbl.Rows[i]...)
	}
	in := f.tbl.Interned()
	if in.NumGroups() != n {
		t.Fatalf("NumGroups = %d, want %d", in.NumGroups(), n)
	}

	ann := newAnnotator(f, false)
	tel := telemetry.New()
	byGroup := make([]*pattern.Match, f.tbl.NumRows())
	ann.EvaluateCoverageGroups(f.tbl, in.Groups(), 0, in.NumGroups(), byGroup, tel)
	if got := tel.Get(telemetry.KBLookups); got != int64(n) {
		t.Fatalf("KBLookups = %d, want one per group (%d)", got, n)
	}

	byRow := make([]*pattern.Match, f.tbl.NumRows())
	ann.EvaluateCoverage(f.tbl, 0, f.tbl.NumRows(), byRow, telemetry.New())
	for i := range byGroup {
		if byGroup[i] == nil {
			t.Fatalf("row %d: nil match from group evaluation", i)
		}
		if !reflect.DeepEqual(byGroup[i], byRow[i]) {
			t.Fatalf("row %d: group match %+v != per-row match %+v", i, byGroup[i], byRow[i])
		}
	}
	// Members of one group share the identical Match pointer.
	for _, gr := range in.Groups() {
		for _, row := range gr.Rows {
			if byGroup[row] != byGroup[gr.Rep] {
				t.Fatalf("row %d does not share its group rep %d's match", row, gr.Rep)
			}
		}
	}

	// A clamped group range leaves other groups' rows untouched.
	partial := make([]*pattern.Match, f.tbl.NumRows())
	ann.EvaluateCoverageGroups(f.tbl, in.Groups(), 1, 100, partial, telemetry.New())
	for _, row := range in.Group(0).Rows {
		if partial[row] != nil {
			t.Fatalf("row %d of group 0 outside [1, hi) was evaluated", row)
		}
	}
}

// TestDegradePolicyString: the Stringer names both policies and falls back
// to the numeric form for unknown values.
func TestDegradePolicyString(t *testing.T) {
	if got := DegradeTrustKB.String(); got != "trust-kb" {
		t.Errorf("DegradeTrustKB = %q", got)
	}
	if got := DegradeMarkUnknown.String(); got != "mark-unknown" {
		t.Errorf("DegradeMarkUnknown = %q", got)
	}
	if got := DegradePolicy(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown policy = %q, want numeric fallback", got)
	}
}
