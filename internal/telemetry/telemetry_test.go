package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilPipelineIsInert(t *testing.T) {
	var p *Pipeline
	p.Inc(CrowdQuestions)
	p.Add(KBLookups, 7)
	start := p.StartStage(StageAnnotate)
	if !start.IsZero() {
		t.Fatal("disabled StartStage returned a real time")
	}
	p.EndStage(StageAnnotate, start)
	if p.Get(KBLookups) != 0 {
		t.Fatal("disabled Get != 0")
	}
	if snap := p.Snapshot(); snap != nil {
		t.Fatalf("disabled Snapshot = %v, want nil", snap)
	}
	if (*Snapshot)(nil).Counter("kb-lookups") != 0 {
		t.Fatal("nil Snapshot.Counter != 0")
	}
}

func TestNilPipelineDoesNotAllocate(t *testing.T) {
	var p *Pipeline
	allocs := testing.AllocsPerRun(100, func() {
		p.Inc(CrowdQuestions)
		start := p.StartStage(StageRepair)
		p.EndStage(StageRepair, start)
	})
	if allocs != 0 {
		t.Fatalf("disabled pipeline allocates %.1f per op", allocs)
	}
}

func TestCountersAndStages(t *testing.T) {
	p := New()
	p.Inc(CrowdQuestions)
	p.Add(GraphsEnumerated, 41)
	p.Inc(GraphsEnumerated)
	start := p.StartStage(StageDiscover)
	p.EndStage(StageDiscover, start)
	if got := p.Get(GraphsEnumerated); got != 42 {
		t.Fatalf("GraphsEnumerated = %d, want 42", got)
	}
	snap := p.Snapshot()
	if snap.Counter("graphs-enumerated") != 42 || snap.Counter("crowd-questions") != 1 {
		t.Fatalf("snapshot counters = %+v", snap.Counters)
	}
	if snap.Counter("kb-lookups") != 0 {
		t.Fatal("untouched counter must still appear as 0")
	}
	if len(snap.Stages) != 1 || snap.Stages[0].Stage != "discover" || snap.Stages[0].Calls != 1 {
		t.Fatalf("snapshot stages = %+v", snap.Stages)
	}
	if snap.Stages[0].Duration < 0 {
		t.Fatalf("negative duration %v", snap.Stages[0].Duration)
	}
}

func TestConcurrentCounters(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Inc(KBLookups)
			}
		}()
	}
	wg.Wait()
	if got := p.Get(KBLookups); got != 8000 {
		t.Fatalf("KBLookups = %d, want 8000", got)
	}
}

type recordingTracer struct {
	starts, ends []Stage
}

func (r *recordingTracer) StageStart(s Stage)                { r.starts = append(r.starts, s) }
func (r *recordingTracer) StageEnd(s Stage, d time.Duration) { r.ends = append(r.ends, s) }

func TestTracerSeesStageBoundaries(t *testing.T) {
	tr := &recordingTracer{}
	p := NewTraced(tr)
	for _, s := range []Stage{StageDiscover, StageValidate, StageAnnotate, StageRepair} {
		p.EndStage(s, p.StartStage(s))
	}
	want := []Stage{StageDiscover, StageValidate, StageAnnotate, StageRepair}
	if len(tr.starts) != len(want) || len(tr.ends) != len(want) {
		t.Fatalf("tracer saw %d starts / %d ends, want %d", len(tr.starts), len(tr.ends), len(want))
	}
	for i, s := range want {
		if tr.starts[i] != s || tr.ends[i] != s {
			t.Fatalf("boundary %d = start %v / end %v, want %v", i, tr.starts[i], tr.ends[i], s)
		}
	}
}

func TestSnapshotString(t *testing.T) {
	p := New()
	p.Add(CrowdQuestions, 12)
	p.EndStage(StageAnnotate, p.StartStage(StageAnnotate))
	snap := p.Snapshot()
	out := snap.String()
	for _, want := range []string{"annotate", "total", "crowd-questions", "12"} {
		if !strings.Contains(out, want) {
			t.Fatalf("snapshot rendering missing %q:\n%s", want, out)
		}
	}
	// Zero-valued counters are noise on healthy runs: hidden by default,
	// restored by the Verbose toggle.
	if strings.Contains(out, "graphs-enumerated") {
		t.Fatalf("snapshot rendering should omit zero counters by default:\n%s", out)
	}
	snap.Verbose = true
	if out := snap.String(); !strings.Contains(out, "graphs-enumerated") {
		t.Fatalf("verbose snapshot rendering missing zero counter:\n%s", out)
	}
	if (*Snapshot)(nil).String() != "" {
		t.Fatal("nil snapshot should render empty")
	}
}

func TestStableNames(t *testing.T) {
	// Snapshot names are a CLI contract; keep them stable.
	wantCounters := map[Counter]string{
		CrowdQuestions:    "crowd-questions",
		KBLookups:         "kb-lookups",
		GraphsEnumerated:  "graphs-enumerated",
		TuplesAnnotated:   "tuples-annotated",
		RepairsGenerated:  "repairs-generated",
		CrowdRetries:      "crowd-retries",
		CrowdTimeouts:     "crowd-timeouts",
		CrowdAbandonments: "crowd-abandonments",
		CrowdEscalations:  "crowd-escalations",
		DegradedDecisions: "degraded-decisions",
		ResolverHits:      "resolver-hits",
		ResolverMisses:    "resolver-misses",
	}
	for c, want := range wantCounters {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	wantStages := map[Stage]string{
		StageDiscover:   "discover",
		StageValidate:   "validate",
		StageAnnotate:   "annotate",
		StageBuildIndex: "build-index",
		StageRepair:     "repair",
	}
	for s, want := range wantStages {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestPipelineMerge(t *testing.T) {
	a, b := New(), New()
	a.Add(CrowdQuestions, 3)
	b.Add(CrowdQuestions, 4)
	b.Add(TuplesAnnotated, 10)
	a.EndStage(StageAnnotate, a.StartStage(StageAnnotate))
	b.EndStage(StageAnnotate, b.StartStage(StageAnnotate))
	a.Observe(HistRepairTopK, 2*time.Millisecond)
	b.Observe(HistRepairTopK, 8*time.Millisecond)
	b.Observe(HistAnnotateTuple, time.Millisecond)

	a.Merge(b)
	if got := a.Get(CrowdQuestions); got != 7 {
		t.Fatalf("merged crowd-questions = %d, want 7", got)
	}
	if got := a.Get(TuplesAnnotated); got != 10 {
		t.Fatalf("merged tuples-annotated = %d, want 10", got)
	}
	snap := a.Snapshot()
	var annotate *StageTiming
	for i := range snap.Stages {
		if snap.Stages[i].Stage == "annotate" {
			annotate = &snap.Stages[i]
		}
	}
	if annotate == nil || annotate.Calls != 2 {
		t.Fatalf("merged annotate stage = %+v, want 2 calls", annotate)
	}
	h := a.Hist(HistRepairTopK)
	if h.Count() != 2 || h.Sum() != 10*time.Millisecond || h.Max() != 8*time.Millisecond {
		t.Fatalf("merged hist count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
	}
	if a.Hist(HistAnnotateTuple).Count() != 1 {
		t.Fatal("merged annotate-tuple hist missing b's observation")
	}
	// b is untouched by the merge.
	if b.Get(CrowdQuestions) != 4 {
		t.Fatalf("source pipeline mutated: %d", b.Get(CrowdQuestions))
	}

	// Nil on either side is a no-op.
	var nilP *Pipeline
	nilP.Merge(a)
	a.Merge(nil)
	if a.Get(CrowdQuestions) != 7 {
		t.Fatal("nil merge changed counters")
	}
}
