// Latency histograms: atomic, mergeable, log-bucketed (power-of-two bucket
// edges). The stage timers answer "where did the run spend its time"; the
// histograms answer the distributional questions a serving deployment needs
// — what is the p99 crowd-question round-trip under fault injection, is the
// resolver cache absorbing the annotation fan-out — without storing one
// sample per operation.
//
// Recording is two atomic adds plus an atomic max; Record is safe from any
// goroutine, so the parallel stages share the pipeline's histograms the same
// way they share its counters. A nil *Histogram (or nil *Pipeline) is the
// disabled instrument: Record is a no-op and allocates nothing.

package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist identifies one pipeline latency histogram.
type Hist int

const (
	// HistCrowdQuestion is the full crowd-question round-trip (AskContext
	// entry to decision), including simulated latency, retry backoffs and
	// escalation assignments from the resilience layer.
	HistCrowdQuestion Hist = iota
	// HistRankJoinIter is one best-first expansion of the §4.3 rank join
	// (a heap pop plus child generation).
	HistRankJoinIter
	// HistAnnotateTuple is the per-tuple annotation step (§6.1 steps 1–2,
	// crowd consultation included).
	HistAnnotateTuple
	// HistRepairTopK is one erroneous row's top-k repair retrieval through
	// the inverted lists (§6.2, Algorithm 4).
	HistRepairTopK
	// HistResolverLookup is one shared-cache label resolution (hit or miss).
	HistResolverLookup

	numHists
)

// String returns the histogram's stable snapshot name.
func (h Hist) String() string {
	switch h {
	case HistCrowdQuestion:
		return "crowd-question"
	case HistRankJoinIter:
		return "rank-join-iteration"
	case HistAnnotateTuple:
		return "annotate-tuple"
	case HistRepairTopK:
		return "repair-topk"
	case HistResolverLookup:
		return "resolver-lookup"
	default:
		return "hist-" + itoa(int(h))
	}
}

// itoa is strconv.Itoa for small non-negative ints without the import.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// histBuckets is the bucket count: bucket b covers [2^b, 2^(b+1)) nanoseconds
// (bucket 0 also absorbs sub-nanosecond values), so 40 buckets span 1ns to
// ~18 minutes — far beyond any per-operation latency the pipeline produces.
// The last bucket is open-ended.
const histBuckets = 40

// bucketOf maps a duration in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper edge of bucket b in nanoseconds.
func bucketUpper(b int) int64 {
	return int64(1)<<(b+1) - 1
}

// Histogram is an atomic, mergeable log-bucketed latency histogram. The zero
// value is ready to use; nil is the disabled instrument.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	for {
		cur := h.maxNS.Load()
		if ns <= cur || h.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the summed observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Max returns the largest recorded observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.maxNS.Load())
}

// Merge adds o's observations into h — the shard-combining operation for
// histograms kept per worker. o may be nil.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sumNS.Add(o.sumNS.Load())
	m := o.maxNS.Load()
	for {
		cur := h.maxNS.Load()
		if m <= cur || h.maxNS.CompareAndSwap(cur, m) {
			break
		}
	}
	for b := range h.buckets {
		if n := o.buckets[b].Load(); n != 0 {
			h.buckets[b].Add(n)
		}
	}
}

// Quantile returns the q-quantile (q in [0,1]) by locating the smallest
// bucket containing that rank and interpolating linearly within it: the
// rank's position among the bucket's observations picks a point on
// [lower edge, upper edge] under a uniform-spread assumption. A rank that
// lands on the bucket's last observation degenerates to the upper edge,
// so the estimate still never underestimates a worst case hiding at the
// top of the bucket. The result is clamped to the observed maximum so a
// quantile never reads above the true worst case. Deterministic for a
// quiescent histogram; zero observations return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(float64(n) * q))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cnt := h.buckets[b].Load()
		if cnt == 0 {
			continue
		}
		if cum+cnt >= rank {
			lower := int64(1) << b
			if b == 0 {
				lower = 0 // bucket 0 also absorbs sub-nanosecond values
			}
			upper := bucketUpper(b)
			pos := rank - cum // 1..cnt within this bucket
			est := lower + int64(math.Round(float64(upper-lower)*float64(pos)/float64(cnt)))
			if mx := h.maxNS.Load(); mx > 0 && est > mx {
				est = mx
			}
			return time.Duration(est)
		}
		cum += cnt
	}
	return time.Duration(h.maxNS.Load()) // counts raced ahead of buckets
}

// HistBucket is one non-empty bucket of a snapshotted histogram.
type HistBucket struct {
	// UpperNS is the bucket's inclusive upper edge in nanoseconds.
	UpperNS int64 `json:"upper_ns"`
	// Count is the number of observations in this bucket (non-cumulative).
	Count int64 `json:"count"`
}

// HistStat is one histogram's snapshot: percentiles for the -stats text
// block and -stats-json, raw buckets for the Prometheus exposition.
type HistStat struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	Max     time.Duration `json:"max_ns"`
	Buckets []HistBucket  `json:"buckets,omitempty"`
}

// stat snapshots the histogram under the given name.
func (h *Histogram) stat(name string) HistStat {
	s := HistStat{
		Name:  name,
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
	for b := 0; b < histBuckets; b++ {
		if n := h.buckets[b].Load(); n != 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperNS: bucketUpper(b), Count: n})
		}
	}
	return s
}

// Observe records d into histogram h (no-op when disabled).
func (p *Pipeline) Observe(h Hist, d time.Duration) {
	if p == nil {
		return
	}
	p.hists[h].Record(d)
}

// StartTimer returns the start time for a later ObserveSince. Disabled
// pipelines return the zero Time without reading the clock.
func (p *Pipeline) StartTimer() time.Time {
	if p == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the time elapsed since start (from StartTimer) into
// histogram h. No-op when disabled.
func (p *Pipeline) ObserveSince(h Hist, start time.Time) {
	if p == nil {
		return
	}
	p.hists[h].Record(time.Since(start))
}

// Hist returns the pipeline's histogram h (nil when disabled), for direct
// Record/Quantile access.
func (p *Pipeline) Hist(h Hist) *Histogram {
	if p == nil {
		return nil
	}
	return &p.hists[h]
}
