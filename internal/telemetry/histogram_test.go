package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1 << 39, histBuckets - 1},
		{1<<62 + 5, histBuckets - 1}, // beyond the last bucket: clamped
	}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	for b := 0; b < histBuckets-1; b++ {
		upper := bucketUpper(b)
		if got := bucketOf(upper); got != b {
			t.Errorf("upper edge %d of bucket %d lands in bucket %d", upper, b, got)
		}
		if got := bucketOf(upper + 1); got != b+1 {
			t.Errorf("value %d should open bucket %d, landed in %d", upper+1, b+1, got)
		}
	}
}

func TestHistogramQuantileDeterminism(t *testing.T) {
	var h Histogram
	// 100 samples: 50 in the [64,127] bucket, 45 in [1024,2047], 5 in
	// [65536,131071]. Every pinned rank lands on its bucket's last
	// observation, so interpolation degenerates to the bucket upper edge,
	// clamped to the observed max.
	for i := 0; i < 50; i++ {
		h.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 45; i++ {
		h.Record(1500 * time.Nanosecond)
	}
	for i := 0; i < 5; i++ {
		h.Record(100_000 * time.Nanosecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	wantSum := int64(50*100 + 45*1500 + 5*100_000)
	if got := h.Sum(); got != time.Duration(wantSum) {
		t.Fatalf("Sum = %v, want %dns", got, wantSum)
	}
	if got := h.Max(); got != 100_000*time.Nanosecond {
		t.Fatalf("Max = %v, want 100µs", got)
	}
	// rank(0.5) = 50 → first bucket; rank(0.95) = 95 → second bucket;
	// rank(0.99) = 99 → third bucket, clamped to max.
	if got := h.Quantile(0.50); got != 127*time.Nanosecond {
		t.Errorf("P50 = %v, want 127ns", got)
	}
	if got := h.Quantile(0.95); got != 2047*time.Nanosecond {
		t.Errorf("P95 = %v, want 2047ns", got)
	}
	if got := h.Quantile(0.99); got != 100_000*time.Nanosecond {
		t.Errorf("P99 = %v, want clamped to max 100µs", got)
	}
	// Repeated evaluation is deterministic.
	if a, b := h.Quantile(0.95), h.Quantile(0.95); a != b {
		t.Errorf("Quantile not deterministic: %v vs %v", a, b)
	}
}

// TestHistogramQuantileInterpolation pins mid-bucket quantiles: a rank that
// falls partway into a bucket interpolates linearly between the bucket's
// edges instead of snapping to the upper edge.
func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	// 100 samples: 20 in [64,127], 60 in [1024,2047], 20 in [65536,131071].
	// The large samples sit exactly on their bucket's upper edge so the
	// max clamp never bites and the interpolated values show through.
	for i := 0; i < 20; i++ {
		h.Record(100 * time.Nanosecond)
	}
	for i := 0; i < 60; i++ {
		h.Record(1500 * time.Nanosecond)
	}
	for i := 0; i < 20; i++ {
		h.Record(131071 * time.Nanosecond)
	}
	// rank(0.50) = 50: position 30 of 60 in [1024,2047]
	//   → 1024 + round(1023·30/60) = 1536.
	if got := h.Quantile(0.50); got != 1536*time.Nanosecond {
		t.Errorf("P50 = %v, want 1536ns", got)
	}
	// rank(0.95) = 95: position 15 of 20 in [65536,131071]
	//   → 65536 + round(65535·15/20) = 114687.
	if got := h.Quantile(0.95); got != 114687*time.Nanosecond {
		t.Errorf("P95 = %v, want 114687ns", got)
	}
	// rank(0.99) = 99: position 19 of 20 in [65536,131071]
	//   → 65536 + round(65535·19/20) = 127794.
	if got := h.Quantile(0.99); got != 127794*time.Nanosecond {
		t.Errorf("P99 = %v, want 127794ns", got)
	}
	// A rank on a bucket's first observation interpolates one step above
	// the lower edge: rank(0.21) = 21 is position 1 of 60 in [1024,2047]
	//   → 1024 + round(1023/60) = 1041.
	if got := h.Quantile(0.21); got != 1041*time.Nanosecond {
		t.Errorf("P21 = %v, want 1041ns", got)
	}
}

// TestHistogramQuantileInterpolationClamp verifies interpolation still never
// reads above the observed maximum.
func TestHistogramQuantileInterpolationClamp(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Record(2000 * time.Nanosecond) // bucket [1024,2047], max 2000
	}
	// rank(0.50) = 5: position 5 of 10 → 1024 + round(1023/2) = 1536.
	if got := h.Quantile(0.50); got != 1536*time.Nanosecond {
		t.Errorf("P50 = %v, want 1536ns", got)
	}
	// rank(0.99) = 10: upper edge 2047, clamped to the observed max.
	if got := h.Quantile(0.99); got != 2000*time.Nanosecond {
		t.Errorf("P99 = %v, want clamped to max 2000ns", got)
	}
}

func TestHistogramQuantileEmptyAndNil(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	var hp *Histogram
	if got := hp.Quantile(0.5); got != 0 {
		t.Errorf("nil Quantile = %v, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Record(100 * time.Nanosecond)
		b.Record(10_000 * time.Nanosecond)
	}
	a.Merge(&b)
	if got := a.Count(); got != 20 {
		t.Fatalf("merged Count = %d, want 20", got)
	}
	if got := a.Max(); got != 10_000*time.Nanosecond {
		t.Fatalf("merged Max = %v, want 10µs", got)
	}
	if got := a.Quantile(0.5); got != 127*time.Nanosecond {
		t.Errorf("merged P50 = %v, want 127ns", got)
	}
	if got := a.Quantile(0.99); got != 10_000*time.Nanosecond {
		t.Errorf("merged P99 = %v, want 10µs (clamped to max)", got)
	}
	a.Merge(nil) // no-op
	if got := a.Count(); got != 20 {
		t.Fatalf("Merge(nil) changed Count to %d", got)
	}
}

// TestHistogramConcurrentRecord exercises the atomic Record path under the
// race detector: N goroutines hammer one histogram (and the same Pipeline
// hist through Observe) and the totals must balance.
func TestHistogramConcurrentRecord(t *testing.T) {
	p := New()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Observe(HistResolverLookup, time.Duration(w*1000+i)*time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	h := p.Hist(HistResolverLookup)
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("Count = %d, want %d", got, workers*perWorker)
	}
	var inBuckets int64
	for _, b := range h.stat("x").Buckets {
		inBuckets += b.Count
	}
	if inBuckets != workers*perWorker {
		t.Fatalf("bucket sum = %d, want %d", inBuckets, workers*perWorker)
	}
	if h.Max() != time.Duration(7*1000+perWorker-1)*time.Nanosecond {
		t.Fatalf("Max = %v", h.Max())
	}
}

func TestSnapshotHistograms(t *testing.T) {
	p := New()
	p.Observe(HistCrowdQuestion, 5*time.Millisecond)
	p.ObserveSince(HistAnnotateTuple, time.Now().Add(-time.Millisecond))
	snap := p.Snapshot()
	if len(snap.Hists) != int(numHists) {
		t.Fatalf("snapshot has %d hists, want %d", len(snap.Hists), numHists)
	}
	hq := snap.HistByName("crowd-question")
	if hq == nil || hq.Count != 1 {
		t.Fatalf("crowd-question hist missing or wrong: %+v", hq)
	}
	if hq.P50 <= 0 || hq.Max < 5*time.Millisecond {
		t.Fatalf("crowd-question percentiles wrong: %+v", hq)
	}
	at := snap.HistByName("annotate-tuple")
	if at == nil || at.Count != 1 || at.Sum < 500*time.Microsecond {
		t.Fatalf("annotate-tuple hist wrong: %+v", at)
	}
	if snap.HistByName("no-such-hist") != nil {
		t.Fatal("HistByName should return nil for unknown names")
	}
}

func TestHistNames(t *testing.T) {
	want := map[Hist]string{
		HistCrowdQuestion:  "crowd-question",
		HistRankJoinIter:   "rank-join-iteration",
		HistAnnotateTuple:  "annotate-tuple",
		HistRepairTopK:     "repair-topk",
		HistResolverLookup: "resolver-lookup",
	}
	if len(want) != int(numHists) {
		t.Fatalf("test covers %d hists, package declares %d", len(want), numHists)
	}
	for h, name := range want {
		if h.String() != name {
			t.Errorf("Hist(%d).String() = %q, want %q", h, h.String(), name)
		}
	}
}
