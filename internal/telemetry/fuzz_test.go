package telemetry

import (
	"bytes"
	"testing"
)

// FuzzLintExposition throws arbitrary bytes at the strict exposition parser:
// it must never panic, must be deterministic (same input, same verdict and
// message), and its verdict must be stable under appending a bare comment
// line (comments carry no samples, so they can neither fix nor break a
// page). Seeds include real WriteProm output so the corpus starts on the
// accepting path, plus the malformed shapes the linter exists to reject.
func FuzzLintExposition(f *testing.F) {
	var buf bytes.Buffer
	if err := New().Snapshot().WriteProm(&buf); err != nil {
		f.Fatalf("seeding from WriteProm: %v", err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("# HELP katara_x_total Pipeline counter x.\n# TYPE katara_x_total counter\nkatara_x_total 3\n"))
	f.Add([]byte("katara_op_duration_seconds_bucket{op=\"x\",le=\"0.001\"} 1\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1.5\nh_count 3\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"0.5\"} 3\n"))
	f.Add([]byte("metric{label=\"unterminated} 1\n"))
	f.Add([]byte("1bad_name 2\n"))
	f.Add([]byte("metric notafloat\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("bound parser input")
		}
		err1 := LintExposition(bytes.NewReader(data))
		err2 := LintExposition(bytes.NewReader(data))
		switch {
		case (err1 == nil) != (err2 == nil):
			t.Fatalf("lint verdict not deterministic: %v vs %v", err1, err2)
		case err1 != nil && err1.Error() != err2.Error():
			t.Fatalf("lint message not deterministic: %q vs %q", err1, err2)
		}
		appended := append(append([]byte{}, data...), []byte("\n# trailing comment\n")...)
		err3 := LintExposition(bytes.NewReader(appended))
		if (err1 == nil) != (err3 == nil) {
			t.Fatalf("appending a comment flipped the verdict: %v vs %v", err1, err3)
		}
	})
}
