// Hierarchical spans and the JSONL run journal. The stage timers see four
// coarse phases; spans see inside them: each crowd-question round-trip (with
// its retries and escalations), each rank-join expansion, each tuple's
// annotation, each erroneous row's top-k retrieval, each resolver cache
// miss. One span is one JSON line in the journal, emitted when the span
// ends, so a `-trace out.jsonl` run leaves a replayable record that
// reconstructs into a single rooted tree.
//
// Concurrency model: *scoped* spans (the run root and the pipeline stages)
// are pushed and popped by the orchestrating goroutine only — the same
// contract the Tracer interface already documents. *Leaf* spans
// (StartSpan) may be created and ended from any goroutine; their parent is
// whatever scoped span is current at creation time.
//
// The disabled path (nil *Pipeline, or no journal attached) allocates
// nothing: StartSpan returns the zero Span, whose methods are no-ops.

package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Journal is an append-only JSONL span sink. One line per ended span:
//
//	{"id":7,"parent":2,"name":"crowd-question","start_us":1042,"dur_us":310,
//	 "attrs":{"assignments":3,"kind":"fact-verification"}}
//
// Timestamps are microseconds since the journal's epoch (its creation).
// Children end before their parents, so a parent's line appears after its
// children's; ids are allocated at span start, so a parent's id is always
// smaller than its children's.
type Journal struct {
	mu    sync.Mutex
	w     io.Writer
	err   error
	spans int64

	idMu   sync.Mutex
	nextID uint64

	epoch time.Time
}

// NewJournal returns a journal writing JSONL to w. The caller owns w's
// lifecycle (buffering, flushing, closing).
func NewJournal(w io.Writer) *Journal {
	return &Journal{w: w, epoch: time.Now()}
}

// Err returns the first write or encode error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Spans returns the number of spans emitted so far.
func (j *Journal) Spans() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spans
}

// nextSpanID allocates a fresh span id (1-based; 0 means "no span").
func (j *Journal) nextSpanID() uint64 {
	j.idMu.Lock()
	j.nextID++
	id := j.nextID
	j.idMu.Unlock()
	return id
}

// SpanRecord is the journal's line format, exported so tools and tests can
// unmarshal journal lines directly.
type SpanRecord struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// emit writes one ended span. encoding/json sorts map keys, so lines are
// deterministic for a given set of attributes.
func (j *Journal) emit(s *Span) {
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(j.epoch).Microseconds(),
		DurUS:   time.Since(s.start).Microseconds(),
		Attrs:   s.attrs,
	}
	line, err := json.Marshal(rec)
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		if j.err == nil {
			j.err = err
		}
		return
	}
	line = append(line, '\n')
	if _, err := j.w.Write(line); err != nil && j.err == nil {
		j.err = err
	}
	j.spans++
}

// Span is one traced operation. The zero Span is the disabled span: every
// method is a no-op. Spans are created through Pipeline.StartSpan /
// Pipeline.PushSpan and must be ended exactly once; End on an already-ended
// or disabled span is a no-op.
type Span struct {
	p      *Pipeline
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  map[string]any
	pushed bool
	ended  bool
}

// Enabled reports whether the span records anything.
func (s *Span) Enabled() bool { return s != nil && s.p != nil }

// attr lazily sets one attribute. Caller has checked s.p != nil.
func (s *Span) attr(key string, v any) {
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// SetInt attaches an integer attribute. No-op (and allocation-free) when
// the span is disabled.
func (s *Span) SetInt(key string, v int64) {
	if s == nil || s.p == nil || s.ended {
		return
	}
	s.attr(key, v)
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil || s.p == nil || s.ended {
		return
	}
	s.attr(key, v)
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil || s.p == nil || s.ended {
		return
	}
	s.attr(key, v)
}

// End emits the span to the journal (and, for pushed spans, restores its
// parent as the current span).
func (s *Span) End() {
	if s == nil || s.p == nil || s.ended {
		return
	}
	s.ended = true
	if s.pushed {
		s.p.popSpan(s.id)
	}
	s.p.journal.emit(s)
}

// SetJournal attaches a span journal; nil detaches. Must be called before
// the run starts (span creation races with journal swaps are not
// synchronised, matching the Tracer contract).
func (p *Pipeline) SetJournal(j *Journal) {
	if p == nil {
		return
	}
	p.journal = j
}

// Journal returns the attached journal (nil when disabled or detached).
func (p *Pipeline) Journal() *Journal {
	if p == nil {
		return nil
	}
	return p.journal
}

// StartSpan opens a leaf span named name, child of the current scoped span
// (the innermost pushed span — typically the active stage; the run root or
// nothing when no stage is active). Safe from any goroutine. Returns the
// zero Span, without allocating, when the pipeline is disabled or no
// journal is attached.
func (p *Pipeline) StartSpan(name string) Span {
	if p == nil || p.journal == nil {
		return Span{}
	}
	return Span{
		p:      p,
		id:     p.journal.nextSpanID(),
		parent: p.curSpan.Load(),
		name:   name,
		start:  time.Now(),
	}
}

// PushSpan opens a scoped span: like StartSpan, but the new span also
// becomes the current span until its End, so spans started in between
// become its children. Push/End pairs must nest and run on the
// orchestrating goroutine (the stage contract); leaf spans from worker
// goroutines may attach concurrently.
func (p *Pipeline) PushSpan(name string) Span {
	sp := p.StartSpan(name)
	if sp.p == nil {
		return sp
	}
	sp.pushed = true
	p.spanMu.Lock()
	p.spanStack = append(p.spanStack, sp.id)
	p.curSpan.Store(sp.id)
	p.spanMu.Unlock()
	return sp
}

// popSpan removes id (and anything pushed above it) from the scope stack
// and restores the enclosing span as current.
func (p *Pipeline) popSpan(id uint64) {
	p.spanMu.Lock()
	for i := len(p.spanStack) - 1; i >= 0; i-- {
		if p.spanStack[i] == id {
			p.spanStack = p.spanStack[:i]
			break
		}
	}
	var cur uint64
	if n := len(p.spanStack); n > 0 {
		cur = p.spanStack[n-1]
	}
	p.curSpan.Store(cur)
	p.spanMu.Unlock()
}
