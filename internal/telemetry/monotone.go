package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckMonotone verifies that no cumulative Prometheus series in body ever
// decreases relative to prev, updating prev in place with the new values.
// Cumulative series are recognized by the exposition-format suffixes
// (_total, _count, _sum, _bucket); gauges may move in either direction and
// are skipped. Callers scrape repeatedly with the same prev map — the load
// driver (kload) and the chaos harness (kchaos) both lean on this to prove
// that /metrics never goes backwards within one daemon boot, no matter how
// jobs churn through the manager's absorb-once aggregate.
func CheckMonotone(prev map[string]float64, body []byte) error {
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		series, valStr := line[:sp], line[sp+1:]
		base := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			base = series[:i]
		}
		if !strings.HasSuffix(base, "_total") && !strings.HasSuffix(base, "_count") &&
			!strings.HasSuffix(base, "_sum") && !strings.HasSuffix(base, "_bucket") {
			continue // gauges may go down
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("series %s: unparseable value %q", series, valStr)
		}
		if last, ok := prev[series]; ok && v < last {
			return fmt.Errorf("series %s went backwards: %v -> %v", series, last, v)
		}
		prev[series] = v
	}
	return nil
}
