package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp, string(body)
}

func TestServerEndpoints(t *testing.T) {
	p := New()
	p.Add(CrowdQuestions, 4)
	p.Add(TuplesAnnotated, 10)
	p.EndStage(StageDiscover, p.StartStage(StageDiscover))
	p.Observe(HistCrowdQuestion, 2*time.Millisecond)

	s := NewServer(p)
	s.SetTotalTuples(325)
	s.SetQuestionBudget(20)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	resp, body = get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	if err := LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("/metrics body fails lint: %v\n%s", err, body)
	}
	if !strings.Contains(body, "katara_crowd_questions_total 4") {
		t.Fatalf("/metrics missing live counter:\n%s", body)
	}

	resp, body = get(t, ts, "/progress")
	if resp.StatusCode != 200 {
		t.Fatalf("/progress status = %d", resp.StatusCode)
	}
	var prog Progress
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if prog.TuplesAnnotated != 10 || prog.TuplesTotal != 325 {
		t.Fatalf("/progress tuples = %d/%d, want 10/325", prog.TuplesAnnotated, prog.TuplesTotal)
	}
	if prog.CrowdQuestions != 4 || prog.BudgetQuestionsRemaining != 16 {
		t.Fatalf("/progress questions = %d, remaining = %d, want 4 and 16",
			prog.CrowdQuestions, prog.BudgetQuestionsRemaining)
	}
	if prog.Done {
		t.Fatal("/progress reports done before MarkDone")
	}

	// Mid-run: an active stage shows up, budget clamps at zero when overspent.
	stageStart := p.StartStage(StageAnnotate)
	p.Add(CrowdQuestions, 100)
	s.MarkDone()
	_, body = get(t, ts, "/progress")
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if prog.Stage != "annotate" {
		t.Fatalf("/progress stage = %q, want annotate", prog.Stage)
	}
	if prog.BudgetQuestionsRemaining != 0 {
		t.Fatalf("overspent budget remaining = %d, want 0", prog.BudgetQuestionsRemaining)
	}
	if !prog.Done {
		t.Fatal("/progress should report done after MarkDone")
	}
	p.EndStage(StageAnnotate, stageStart)

	resp, _ = get(t, ts, "/debug/pprof/")
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/ status = %d", resp.StatusCode)
	}

	resp, _ = get(t, ts, "/no-such-page")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}

	resp, body = get(t, ts, "/")
	if resp.StatusCode != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", resp.StatusCode, body)
	}
}

func TestServerNilPipeline(t *testing.T) {
	s := NewServer(nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if err := LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("nil-pipeline /metrics fails lint: %v\n%s", err, body)
	}

	resp, body = get(t, ts, "/progress")
	if resp.StatusCode != 200 {
		t.Fatalf("/progress status = %d", resp.StatusCode)
	}
	var prog Progress
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if prog.Stage != "" || prog.CrowdQuestions != 0 || prog.BudgetQuestionsRemaining != -1 {
		t.Fatalf("nil-pipeline progress = %+v", prog)
	}
}

func TestServerStartAndClose(t *testing.T) {
	s := NewServer(New())
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseDrainsInFlightScrape is the regression test for the shutdown
// bugfix: Close used http.Server.Close, which severed connections mid-
// response, so a scraper could get a truncated /metrics body. Close now
// drains gracefully: a request already in flight when Close starts must
// complete with a full, lint-clean exposition.
func TestCloseDrainsInFlightScrape(t *testing.T) {
	p := New()
	p.Add(CrowdQuestions, 7)
	s := NewServer(p)

	entered := make(chan struct{})
	release := make(chan struct{})
	var gated atomic.Bool
	s.requestGate = func() {
		// Gate only the first request; Shutdown's own internals issue none,
		// but keep the hook idempotent anyway.
		if gated.CompareAndSwap(false, true) {
			close(entered)
			<-release
		}
	}

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}

	type scrape struct {
		status int
		body   string
		err    error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- scrape{status: resp.StatusCode, body: string(body), err: err}
	}()

	<-entered // the scrape is in flight
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()

	// Close must not return while the request is still being served.
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) before the in-flight scrape completed", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // let the handler run; shutdown should now complete
	sc := <-got
	if sc.err != nil {
		t.Fatalf("in-flight scrape failed during shutdown: %v", sc.err)
	}
	if sc.status != 200 {
		t.Fatalf("in-flight scrape status = %d, want 200", sc.status)
	}
	if err := LintExposition(strings.NewReader(sc.body)); err != nil {
		t.Fatalf("in-flight scrape body truncated or malformed: %v", err)
	}
	if !strings.Contains(sc.body, "katara_crowd_questions_total 7") {
		t.Fatalf("in-flight scrape body incomplete:\n%s", sc.body)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseSeversStuckRequestAfterGrace: a request that never finishes must
// not wedge Close forever — after ShutdownGrace the server falls back to a
// hard close.
func TestCloseSeversStuckRequestAfterGrace(t *testing.T) {
	s := NewServer(New())
	s.ShutdownGrace = 30 * time.Millisecond

	entered := make(chan struct{})
	var gated atomic.Bool
	s.requestGate = func() {
		if gated.CompareAndSwap(false, true) {
			close(entered)
			select {} // never returns: a pathologically stuck handler
		}
	}

	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	go func() {
		resp, err := http.Get("http://" + addr.String() + "/metrics")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close after grace: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a stuck request; grace fallback did not fire")
	}
}

func TestServerNilSafety(t *testing.T) {
	var s *Server
	s.SetTotalTuples(1)
	s.SetQuestionBudget(1)
	s.MarkDone()
	if err := s.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if _, err := s.Start(":0"); err == nil {
		t.Fatal("nil Start should error")
	}
	// Never-started server closes cleanly too.
	if err := NewServer(nil).Close(); err != nil {
		t.Fatalf("never-started Close: %v", err)
	}
}
