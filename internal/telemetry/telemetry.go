// Package telemetry instruments the KATARA pipeline: wall-clock timers for
// the pipeline stages (discover → validate → annotate → repair), monotonic
// counters for the quantities the paper's cost model cares about (crowd
// questions, KB lookups, instance graphs enumerated), and a pluggable
// Tracer hook for live observation.
//
// The instrument is a *Pipeline. A nil *Pipeline is the disabled instrument:
// every method is safe to call on it and does nothing, without allocating,
// so hot paths can be unconditionally instrumented —
//
//	start := tel.StartStage(telemetry.StageAnnotate) // zero Time when nil
//	...
//	tel.EndStage(telemetry.StageAnnotate, start)
//	tel.Inc(telemetry.CrowdQuestions)
//
// Counters use atomics, so one Pipeline may be shared by the worker pools of
// the parallel stages (discovery sharding, annotation coverage fan-out,
// repair index construction).
package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonic pipeline counter.
type Counter int

const (
	// CrowdQuestions counts crowd questions issued (validation §5 and
	// annotation §6.1 combined) — the paper's monetary-cost driver.
	CrowdQuestions Counter = iota
	// CrowdAssignments counts paid assignment deliveries (each question is
	// asked of several workers; markets price per assignment).
	CrowdAssignments
	// KBLookups counts knowledge-base probes: per-cell label resolutions
	// during candidate generation (Q_types/Q_rels) and per-tuple coverage
	// evaluations during annotation. Parallel runs may probe more than
	// serial ones (per-shard caches, speculative coverage precompute).
	KBLookups
	// GraphsEnumerated counts instance graphs materialised into repair
	// indexes (§6.2) — zero when cleaning an error-free table.
	GraphsEnumerated
	// TuplesAnnotated counts tuples labelled by the annotator.
	TuplesAnnotated
	// RepairsGenerated counts candidate repairs returned by top-k retrieval.
	RepairsGenerated
	// CrowdRetries counts assignment delivery retries (backoff waits) issued
	// by the crowd resilience layer.
	CrowdRetries
	// CrowdTimeouts counts assignments that exceeded their timeout (or the
	// run deadline) while outstanding.
	CrowdTimeouts
	// CrowdAbandonments counts assignments abandoned by workers and
	// reassigned to fresh ones.
	CrowdAbandonments
	// CrowdEscalations counts adaptive-redundancy assignments posted beyond
	// the base per-question redundancy because the vote margin was low.
	CrowdEscalations
	// DegradedDecisions counts pipeline decisions taken under a
	// graceful-degradation policy (pattern fallback, unanswered tuples)
	// after the budget or deadline ran out.
	DegradedDecisions
	// ResolverHits counts label resolutions served from the shared
	// entity-resolution cache without touching the fuzzy index.
	ResolverHits
	// ResolverMisses counts label resolutions the cache had to compute
	// against the KB (first sight of a value, or post-enrichment flush).
	ResolverMisses
	// CrowdQuestionsDeduped counts crowd questions answered from the
	// distinct-signature memo instead of being issued: a duplicate row's
	// check reuses the answer its signature's first occurrence obtained.
	CrowdQuestionsDeduped

	numCounters
)

// String returns the counter's stable snapshot name.
func (c Counter) String() string {
	switch c {
	case CrowdQuestions:
		return "crowd-questions"
	case CrowdAssignments:
		return "crowd-assignments"
	case KBLookups:
		return "kb-lookups"
	case GraphsEnumerated:
		return "graphs-enumerated"
	case TuplesAnnotated:
		return "tuples-annotated"
	case RepairsGenerated:
		return "repairs-generated"
	case CrowdRetries:
		return "crowd-retries"
	case CrowdTimeouts:
		return "crowd-timeouts"
	case CrowdAbandonments:
		return "crowd-abandonments"
	case CrowdEscalations:
		return "crowd-escalations"
	case DegradedDecisions:
		return "degraded-decisions"
	case ResolverHits:
		return "resolver-hits"
	case ResolverMisses:
		return "resolver-misses"
	case CrowdQuestionsDeduped:
		return "crowd-questions-deduped"
	default:
		return fmt.Sprintf("counter-%d", int(c))
	}
}

// Stage identifies one timed pipeline stage.
type Stage int

const (
	// StageDiscover is candidate generation plus the rank join (§4).
	StageDiscover Stage = iota
	// StageValidate is crowd pattern validation (§5).
	StageValidate
	// StageAnnotate is per-tuple annotation (§6.1).
	StageAnnotate
	// StageBuildIndex is instance-graph enumeration and inverted-list
	// construction (§6.2) — a sub-stage of repair, reported separately
	// because it dominates on large KBs.
	StageBuildIndex
	// StageRepair is the whole repair stage: index construction plus
	// per-row top-k retrieval.
	StageRepair

	numStages
)

// String returns the stage's stable snapshot name.
func (s Stage) String() string {
	switch s {
	case StageDiscover:
		return "discover"
	case StageValidate:
		return "validate"
	case StageAnnotate:
		return "annotate"
	case StageBuildIndex:
		return "build-index"
	case StageRepair:
		return "repair"
	default:
		return fmt.Sprintf("stage-%d", int(s))
	}
}

// Tracer observes stage boundaries as they happen. Implementations must be
// fast and safe for use from the goroutine running the pipeline (stages are
// entered and left by the orchestrating goroutine only, never by pool
// workers).
type Tracer interface {
	// StageStart is called when the pipeline enters s.
	StageStart(s Stage)
	// StageEnd is called when the pipeline leaves s after d.
	StageEnd(s Stage, d time.Duration)
}

// Pipeline accumulates one run's instrumentation. The zero value is ready to
// use; nil means disabled.
type Pipeline struct {
	counters [numCounters]atomic.Int64
	stageNS  [numStages]atomic.Int64
	stageN   [numStages]atomic.Int64
	hists    [numHists]Histogram
	tracer   Tracer // optional; no-op when nil

	// Span journal (trace.go). journal is attached before the run; the
	// scope stack tracks pushed spans (run root, stages) so leaf spans from
	// any goroutine find their parent through curSpan.
	journal   *Journal
	spanMu    sync.Mutex
	spanStack []uint64
	curSpan   atomic.Uint64

	// curStagePlus1 is the innermost active stage + 1 (0 = idle), for the
	// /progress endpoint. stageStack restores the enclosing stage when
	// nested stages (build-index inside repair) end.
	curStagePlus1 atomic.Int32
	stageStack    []Stage
	stageSpans    [numStages]Span
}

// New returns an enabled Pipeline with the no-op tracer.
func New() *Pipeline { return &Pipeline{} }

// NewTraced returns an enabled Pipeline reporting stage boundaries to t
// (nil t behaves like New).
func NewTraced(t Tracer) *Pipeline { return &Pipeline{tracer: t} }

// Inc adds 1 to counter c.
func (p *Pipeline) Inc(c Counter) { p.Add(c, 1) }

// Add adds n to counter c.
func (p *Pipeline) Add(c Counter, n int64) {
	if p == nil {
		return
	}
	p.counters[c].Add(n)
}

// Get returns the current value of counter c (0 when disabled).
func (p *Pipeline) Get(c Counter) int64 {
	if p == nil {
		return 0
	}
	return p.counters[c].Load()
}

// StartStage marks entry into s and returns the start time to hand back to
// EndStage. Disabled pipelines return the zero Time. Stages are entered and
// left by the orchestrating goroutine only (the Tracer contract); when a
// journal is attached each stage also becomes a scoped span, so
// sub-operation spans nest under it.
func (p *Pipeline) StartStage(s Stage) time.Time {
	if p == nil {
		return time.Time{}
	}
	p.spanMu.Lock()
	p.stageStack = append(p.stageStack, s)
	p.spanMu.Unlock()
	p.curStagePlus1.Store(int32(s) + 1)
	if p.journal != nil {
		p.stageSpans[s] = p.PushSpan(s.String())
	}
	if p.tracer != nil {
		p.tracer.StageStart(s)
	}
	return time.Now()
}

// EndStage accumulates the time spent in s since start.
func (p *Pipeline) EndStage(s Stage, start time.Time) {
	if p == nil {
		return
	}
	d := time.Since(start)
	p.stageNS[s].Add(int64(d))
	p.stageN[s].Add(1)
	if p.journal != nil {
		sp := p.stageSpans[s]
		sp.End()
		p.stageSpans[s] = Span{}
	}
	p.spanMu.Lock()
	for i := len(p.stageStack) - 1; i >= 0; i-- {
		if p.stageStack[i] == s {
			p.stageStack = append(p.stageStack[:i], p.stageStack[i+1:]...)
			break
		}
	}
	var cur int32
	if n := len(p.stageStack); n > 0 {
		cur = int32(p.stageStack[n-1]) + 1
	}
	p.curStagePlus1.Store(cur)
	p.spanMu.Unlock()
	if p.tracer != nil {
		p.tracer.StageEnd(s, d)
	}
}

// CurrentStage returns the innermost active stage's name, or "" when the
// pipeline is idle (or disabled). Safe from any goroutine — the /progress
// endpoint polls it while the run executes.
func (p *Pipeline) CurrentStage() string {
	if p == nil {
		return ""
	}
	v := p.curStagePlus1.Load()
	if v == 0 {
		return ""
	}
	return Stage(v - 1).String()
}

// Merge folds o's counters, stage accumulators and histograms into p — the
// shard-combining operation: each row-range shard of a sharded run records
// into its own Pipeline, and the orchestrator merges them into the run's
// pipeline once the fan-out joins. Span/journal state is not merged (shard
// pipelines carry no journal). Safe when either side is nil or when o is
// still being written by other goroutines (all state is atomic), though the
// orchestrator merges only after its shards join.
func (p *Pipeline) Merge(o *Pipeline) {
	if p == nil || o == nil {
		return
	}
	for c := Counter(0); c < numCounters; c++ {
		if n := o.counters[c].Load(); n != 0 {
			p.counters[c].Add(n)
		}
	}
	for s := Stage(0); s < numStages; s++ {
		if ns := o.stageNS[s].Load(); ns != 0 {
			p.stageNS[s].Add(ns)
		}
		if n := o.stageN[s].Load(); n != 0 {
			p.stageN[s].Add(n)
		}
	}
	for h := Hist(0); h < numHists; h++ {
		p.hists[h].Merge(&o.hists[h])
	}
}

// StageTiming is the accumulated wall-clock of one stage.
type StageTiming struct {
	Stage    string        `json:"stage"`
	Calls    int64         `json:"calls"`
	Duration time.Duration `json:"duration_ns"`
}

// CounterValue is one counter's final value.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time copy of a Pipeline, attached to
// katara.Report.Timings, rendered by the -stats CLI flags, emitted whole by
// -stats-json, and exposed in Prometheus text format by WriteProm.
type Snapshot struct {
	// Stages lists the entered stages in pipeline order.
	Stages []StageTiming `json:"stages"`
	// Counters lists every counter (including zeros) in declaration order.
	Counters []CounterValue `json:"counters"`
	// Hists lists every latency histogram (including empty ones) in
	// declaration order, with percentiles and raw buckets.
	Hists []HistStat `json:"histograms"`
	// Verbose makes String list zero-valued counters and empty histograms
	// too; by default they are omitted, so an error-free run's -stats block
	// does not enumerate every never-hit fault counter.
	Verbose bool `json:"-"`
}

// Snapshot copies the current state; nil (disabled) pipelines return nil.
func (p *Pipeline) Snapshot() *Snapshot {
	if p == nil {
		return nil
	}
	snap := &Snapshot{}
	for s := Stage(0); s < numStages; s++ {
		n := p.stageN[s].Load()
		if n == 0 {
			continue
		}
		snap.Stages = append(snap.Stages, StageTiming{
			Stage:    s.String(),
			Calls:    n,
			Duration: time.Duration(p.stageNS[s].Load()),
		})
	}
	for c := Counter(0); c < numCounters; c++ {
		snap.Counters = append(snap.Counters, CounterValue{Name: c.String(), Value: p.counters[c].Load()})
	}
	for h := Hist(0); h < numHists; h++ {
		snap.Hists = append(snap.Hists, p.hists[h].stat(h.String()))
	}
	return snap
}

// HistByName returns the named histogram snapshot, or nil if absent.
func (s *Snapshot) HistByName(name string) *HistStat {
	if s == nil {
		return nil
	}
	for i := range s.Hists {
		if s.Hists[i].Name == name {
			return &s.Hists[i]
		}
	}
	return nil
}

// Counter returns the value of the named counter, or 0 if absent.
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Total returns the summed duration of every recorded stage.
func (s *Snapshot) Total() time.Duration {
	if s == nil {
		return 0
	}
	var t time.Duration
	for _, st := range s.Stages {
		t += st.Duration
	}
	return t
}

// String renders the snapshot as the aligned text block printed by -stats.
// Zero-valued counters and empty histograms are omitted unless Verbose is
// set, so an error-free run does not list every never-hit fault counter.
func (s *Snapshot) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("pipeline stages:\n")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "  %-12s %12s", st.Stage, st.Duration.Round(time.Microsecond))
		if st.Calls > 1 {
			fmt.Fprintf(&b, "  (%d calls)", st.Calls)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %-12s %12s\n", "total", s.Total().Round(time.Microsecond))
	b.WriteString("pipeline counters:\n")
	for _, c := range s.Counters {
		if c.Value == 0 && !s.Verbose {
			continue
		}
		fmt.Fprintf(&b, "  %-18s %10d\n", c.Name, c.Value)
	}
	hdr := false
	for _, h := range s.Hists {
		if h.Count == 0 && !s.Verbose {
			continue
		}
		if !hdr {
			b.WriteString("pipeline latencies (p50/p95/p99/max):\n")
			hdr = true
		}
		fmt.Fprintf(&b, "  %-20s %10s %10s %10s %10s  (n=%d)\n", h.Name,
			h.P50.Round(time.Microsecond), h.P95.Round(time.Microsecond),
			h.P99.Round(time.Microsecond), h.Max.Round(time.Microsecond), h.Count)
	}
	return b.String()
}
