// Package telemetry instruments the KATARA pipeline: wall-clock timers for
// the pipeline stages (discover → validate → annotate → repair), monotonic
// counters for the quantities the paper's cost model cares about (crowd
// questions, KB lookups, instance graphs enumerated), and a pluggable
// Tracer hook for live observation.
//
// The instrument is a *Pipeline. A nil *Pipeline is the disabled instrument:
// every method is safe to call on it and does nothing, without allocating,
// so hot paths can be unconditionally instrumented —
//
//	start := tel.StartStage(telemetry.StageAnnotate) // zero Time when nil
//	...
//	tel.EndStage(telemetry.StageAnnotate, start)
//	tel.Inc(telemetry.CrowdQuestions)
//
// Counters use atomics, so one Pipeline may be shared by the worker pools of
// the parallel stages (discovery sharding, annotation coverage fan-out,
// repair index construction).
package telemetry

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonic pipeline counter.
type Counter int

const (
	// CrowdQuestions counts crowd questions issued (validation §5 and
	// annotation §6.1 combined) — the paper's monetary-cost driver.
	CrowdQuestions Counter = iota
	// KBLookups counts knowledge-base probes: per-cell label resolutions
	// during candidate generation (Q_types/Q_rels) and per-tuple coverage
	// evaluations during annotation. Parallel runs may probe more than
	// serial ones (per-shard caches, speculative coverage precompute).
	KBLookups
	// GraphsEnumerated counts instance graphs materialised into repair
	// indexes (§6.2) — zero when cleaning an error-free table.
	GraphsEnumerated
	// TuplesAnnotated counts tuples labelled by the annotator.
	TuplesAnnotated
	// RepairsGenerated counts candidate repairs returned by top-k retrieval.
	RepairsGenerated
	// CrowdRetries counts assignment delivery retries (backoff waits) issued
	// by the crowd resilience layer.
	CrowdRetries
	// CrowdTimeouts counts assignments that exceeded their timeout (or the
	// run deadline) while outstanding.
	CrowdTimeouts
	// CrowdAbandonments counts assignments abandoned by workers and
	// reassigned to fresh ones.
	CrowdAbandonments
	// CrowdEscalations counts adaptive-redundancy assignments posted beyond
	// the base per-question redundancy because the vote margin was low.
	CrowdEscalations
	// DegradedDecisions counts pipeline decisions taken under a
	// graceful-degradation policy (pattern fallback, unanswered tuples)
	// after the budget or deadline ran out.
	DegradedDecisions
	// ResolverHits counts label resolutions served from the shared
	// entity-resolution cache without touching the fuzzy index.
	ResolverHits
	// ResolverMisses counts label resolutions the cache had to compute
	// against the KB (first sight of a value, or post-enrichment flush).
	ResolverMisses

	numCounters
)

// String returns the counter's stable snapshot name.
func (c Counter) String() string {
	switch c {
	case CrowdQuestions:
		return "crowd-questions"
	case KBLookups:
		return "kb-lookups"
	case GraphsEnumerated:
		return "graphs-enumerated"
	case TuplesAnnotated:
		return "tuples-annotated"
	case RepairsGenerated:
		return "repairs-generated"
	case CrowdRetries:
		return "crowd-retries"
	case CrowdTimeouts:
		return "crowd-timeouts"
	case CrowdAbandonments:
		return "crowd-abandonments"
	case CrowdEscalations:
		return "crowd-escalations"
	case DegradedDecisions:
		return "degraded-decisions"
	case ResolverHits:
		return "resolver-hits"
	case ResolverMisses:
		return "resolver-misses"
	default:
		return fmt.Sprintf("counter-%d", int(c))
	}
}

// Stage identifies one timed pipeline stage.
type Stage int

const (
	// StageDiscover is candidate generation plus the rank join (§4).
	StageDiscover Stage = iota
	// StageValidate is crowd pattern validation (§5).
	StageValidate
	// StageAnnotate is per-tuple annotation (§6.1).
	StageAnnotate
	// StageBuildIndex is instance-graph enumeration and inverted-list
	// construction (§6.2) — a sub-stage of repair, reported separately
	// because it dominates on large KBs.
	StageBuildIndex
	// StageRepair is the whole repair stage: index construction plus
	// per-row top-k retrieval.
	StageRepair

	numStages
)

// String returns the stage's stable snapshot name.
func (s Stage) String() string {
	switch s {
	case StageDiscover:
		return "discover"
	case StageValidate:
		return "validate"
	case StageAnnotate:
		return "annotate"
	case StageBuildIndex:
		return "build-index"
	case StageRepair:
		return "repair"
	default:
		return fmt.Sprintf("stage-%d", int(s))
	}
}

// Tracer observes stage boundaries as they happen. Implementations must be
// fast and safe for use from the goroutine running the pipeline (stages are
// entered and left by the orchestrating goroutine only, never by pool
// workers).
type Tracer interface {
	// StageStart is called when the pipeline enters s.
	StageStart(s Stage)
	// StageEnd is called when the pipeline leaves s after d.
	StageEnd(s Stage, d time.Duration)
}

// Pipeline accumulates one run's instrumentation. The zero value is ready to
// use; nil means disabled.
type Pipeline struct {
	counters [numCounters]atomic.Int64
	stageNS  [numStages]atomic.Int64
	stageN   [numStages]atomic.Int64
	tracer   Tracer // optional; no-op when nil
}

// New returns an enabled Pipeline with the no-op tracer.
func New() *Pipeline { return &Pipeline{} }

// NewTraced returns an enabled Pipeline reporting stage boundaries to t
// (nil t behaves like New).
func NewTraced(t Tracer) *Pipeline { return &Pipeline{tracer: t} }

// Inc adds 1 to counter c.
func (p *Pipeline) Inc(c Counter) { p.Add(c, 1) }

// Add adds n to counter c.
func (p *Pipeline) Add(c Counter, n int64) {
	if p == nil {
		return
	}
	p.counters[c].Add(n)
}

// Get returns the current value of counter c (0 when disabled).
func (p *Pipeline) Get(c Counter) int64 {
	if p == nil {
		return 0
	}
	return p.counters[c].Load()
}

// StartStage marks entry into s and returns the start time to hand back to
// EndStage. Disabled pipelines return the zero Time.
func (p *Pipeline) StartStage(s Stage) time.Time {
	if p == nil {
		return time.Time{}
	}
	if p.tracer != nil {
		p.tracer.StageStart(s)
	}
	return time.Now()
}

// EndStage accumulates the time spent in s since start.
func (p *Pipeline) EndStage(s Stage, start time.Time) {
	if p == nil {
		return
	}
	d := time.Since(start)
	p.stageNS[s].Add(int64(d))
	p.stageN[s].Add(1)
	if p.tracer != nil {
		p.tracer.StageEnd(s, d)
	}
}

// StageTiming is the accumulated wall-clock of one stage.
type StageTiming struct {
	Stage    string
	Calls    int64
	Duration time.Duration
}

// CounterValue is one counter's final value.
type CounterValue struct {
	Name  string
	Value int64
}

// Snapshot is a point-in-time copy of a Pipeline, attached to
// katara.Report.Timings and rendered by the -stats CLI flags.
type Snapshot struct {
	// Stages lists the entered stages in pipeline order.
	Stages []StageTiming
	// Counters lists every counter (including zeros) in declaration order.
	Counters []CounterValue
}

// Snapshot copies the current state; nil (disabled) pipelines return nil.
func (p *Pipeline) Snapshot() *Snapshot {
	if p == nil {
		return nil
	}
	snap := &Snapshot{}
	for s := Stage(0); s < numStages; s++ {
		n := p.stageN[s].Load()
		if n == 0 {
			continue
		}
		snap.Stages = append(snap.Stages, StageTiming{
			Stage:    s.String(),
			Calls:    n,
			Duration: time.Duration(p.stageNS[s].Load()),
		})
	}
	for c := Counter(0); c < numCounters; c++ {
		snap.Counters = append(snap.Counters, CounterValue{Name: c.String(), Value: p.counters[c].Load()})
	}
	return snap
}

// Counter returns the value of the named counter, or 0 if absent.
func (s *Snapshot) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Total returns the summed duration of every recorded stage.
func (s *Snapshot) Total() time.Duration {
	if s == nil {
		return 0
	}
	var t time.Duration
	for _, st := range s.Stages {
		t += st.Duration
	}
	return t
}

// String renders the snapshot as the aligned text block printed by -stats.
func (s *Snapshot) String() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	b.WriteString("pipeline stages:\n")
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "  %-12s %12s", st.Stage, st.Duration.Round(time.Microsecond))
		if st.Calls > 1 {
			fmt.Fprintf(&b, "  (%d calls)", st.Calls)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %-12s %12s\n", "total", s.Total().Round(time.Microsecond))
	b.WriteString("pipeline counters:\n")
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "  %-18s %10d\n", c.Name, c.Value)
	}
	return b.String()
}
