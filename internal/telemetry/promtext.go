// Prometheus text-format exposition (version 0.0.4), hand-rolled so go.mod
// stays stdlib-only: every counter, stage timer, and latency histogram of a
// Snapshot becomes a scrapeable metric family. LintExposition is the strict
// counterpart — a line-by-line parser used by the tests, cmd/promlint and
// the CI observability smoke job to reject malformed output.

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// promName converts a snapshot name ("crowd-questions") into a metric-name
// fragment ("crowd_questions").
func promName(name string) string {
	return strings.ReplaceAll(name, "-", "_")
}

// WriteProm writes the snapshot as Prometheus text exposition:
//
//	katara_<counter>_total                               each pipeline counter
//	katara_stage_duration_seconds_total{stage="..."}     accumulated stage wall-clock
//	katara_stage_runs_total{stage="..."}                 stage entry count
//	katara_op_duration_seconds{op="...",le="..."}        latency histograms
//
// Every counter and histogram appears even at zero, so a scraper sees a
// stable metric set across runs.
func (s *Snapshot) WriteProm(w io.Writer) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		n := "katara_" + promName(c.Name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Pipeline counter %s.\n", n, c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		fmt.Fprintf(bw, "%s %d\n", n, c.Value)
	}

	fmt.Fprintf(bw, "# HELP katara_stage_duration_seconds_total Accumulated wall-clock per pipeline stage.\n")
	fmt.Fprintf(bw, "# TYPE katara_stage_duration_seconds_total counter\n")
	for _, st := range s.Stages {
		fmt.Fprintf(bw, "katara_stage_duration_seconds_total{stage=%q} %s\n",
			st.Stage, formatFloat(st.Duration.Seconds()))
	}
	fmt.Fprintf(bw, "# HELP katara_stage_runs_total Number of times each pipeline stage was entered.\n")
	fmt.Fprintf(bw, "# TYPE katara_stage_runs_total counter\n")
	for _, st := range s.Stages {
		fmt.Fprintf(bw, "katara_stage_runs_total{stage=%q} %d\n", st.Stage, st.Calls)
	}

	fmt.Fprintf(bw, "# HELP katara_op_duration_seconds Latency of instrumented sub-operations.\n")
	fmt.Fprintf(bw, "# TYPE katara_op_duration_seconds histogram\n")
	for _, h := range s.Hists {
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(bw, "katara_op_duration_seconds_bucket{op=%q,le=%q} %d\n",
				h.Name, formatFloat(float64(b.UpperNS)/1e9), cum)
		}
		fmt.Fprintf(bw, "katara_op_duration_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", h.Name, h.Count)
		fmt.Fprintf(bw, "katara_op_duration_seconds_sum{op=%q} %s\n", h.Name, formatFloat(h.Sum.Seconds()))
		fmt.Fprintf(bw, "katara_op_duration_seconds_count{op=%q} %d\n", h.Name, h.Count)
	}
	return bw.Flush()
}

// formatFloat renders a float sample value the way Prometheus expects
// (shortest round-trip representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- strict exposition linter -------------------------------------------

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	typeValues   = map[string]bool{
		"counter": true, "gauge": true, "histogram": true,
		"summary": true, "untyped": true,
	}
)

// histSeries accumulates one histogram series' buckets for cross-line
// validation, keyed by the label set minus "le".
type histSeries struct {
	lastLE   float64
	lastCum  float64
	sawInf   bool
	infValue float64
	count    float64
	sawCount bool
	firstRef int // line number of the first bucket, for error messages
}

// LintExposition is a strict line-by-line parser of Prometheus text
// exposition format. It validates what the ecosystem's parsers enforce:
// metric and label name grammar, label quoting, float-parseable sample
// values, TYPE declared once and before its samples, histogram buckets
// cumulative and nondecreasing in le order, an +Inf bucket present and equal
// to the series' _count. It returns the first violation found, or nil.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	typed := map[string]string{} // metric family -> type
	sampled := map[string]bool{} // families that already emitted samples
	hists := map[string]*histSeries{}
	lineNo := 0
	samples := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, lineNo, typed, sampled); err != nil {
				return err
			}
			continue
		}
		name, labels, value, err := parseSample(line, lineNo)
		if err != nil {
			return err
		}
		samples++
		family := familyOf(name, typed)
		sampled[family] = true
		if typed[family] == "histogram" {
			if err := lintHistogramSample(name, labels, value, lineNo, hists); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	for key, hs := range hists {
		if !hs.sawInf {
			return fmt.Errorf("histogram series %s: no le=\"+Inf\" bucket", key)
		}
		if hs.sawCount && hs.infValue != hs.count {
			return fmt.Errorf("histogram series %s: +Inf bucket %v != _count %v", key, hs.infValue, hs.count)
		}
	}
	return nil
}

// lintComment validates a # HELP / # TYPE line (other comments are allowed
// free-form).
func lintComment(line string, lineNo int, typed map[string]string, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("line %d: malformed HELP comment %q", lineNo, line)
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("line %d: malformed TYPE comment %q", lineNo, line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("line %d: TYPE for invalid metric name %q", lineNo, name)
		}
		if !typeValues[typ] {
			return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
		}
		if _, dup := typed[name]; dup {
			return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
		}
		if sampled[name] {
			return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
		}
		typed[name] = typ
	}
	return nil
}

// parseSample splits "name{labels} value [timestamp]" strictly.
func parseSample(line string, lineNo int) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.IndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("line %d: unterminated label set in %q", lineNo, line)
		}
		labels, err = parseLabels(rest[brace+1:end], lineNo)
		if err != nil {
			return "", nil, 0, err
		}
		rest = strings.TrimLeft(rest[end+1:], " ")
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("line %d: sample without value: %q", lineNo, line)
		}
		name, rest = rest[:sp], strings.TrimLeft(rest[sp:], " ")
	}
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
	}
	parts := strings.Fields(rest)
	if len(parts) < 1 || len(parts) > 2 {
		return "", nil, 0, fmt.Errorf("line %d: expected value [timestamp], got %q", lineNo, rest)
	}
	value, err = parsePromFloat(parts[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("line %d: unparseable sample value %q", lineNo, parts[0])
	}
	if len(parts) == 2 {
		if _, err := strconv.ParseInt(parts[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("line %d: unparseable timestamp %q", lineNo, parts[1])
		}
	}
	return name, labels, value, nil
}

// parseLabels parses `k1="v1",k2="v2"` strictly (quoted values, valid
// escapes, no duplicate names).
func parseLabels(s string, lineNo int) (map[string]string, error) {
	labels := map[string]string{}
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("line %d: label without '=' in %q", lineNo, s)
		}
		key := s[:eq]
		if !labelNameRe.MatchString(key) {
			return nil, fmt.Errorf("line %d: invalid label name %q", lineNo, key)
		}
		if _, dup := labels[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate label %q", lineNo, key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("line %d: label %q value not quoted", lineNo, key)
		}
		val, rest, err := unquoteLabel(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: label %q: %v", lineNo, key, err)
		}
		labels[key] = val
		s = rest
		if s != "" {
			if s[0] != ',' {
				return nil, fmt.Errorf("line %d: expected ',' between labels, got %q", lineNo, s)
			}
			s = strings.TrimSpace(s[1:])
			if s == "" {
				break // trailing comma is tolerated by the reference parser
			}
		}
	}
	return labels, nil
}

// unquoteLabel reads a double-quoted label value with \\, \" and \n escapes,
// returning the value and the remainder after the closing quote.
func unquoteLabel(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted value")
}

// parsePromFloat parses a sample value, accepting the exposition format's
// special values.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf maps a sample name to its declared family: histogram samples
// (_bucket/_sum/_count) belong to their base family.
func familyOf(name string, typed map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && typed[base] == "histogram" {
			return base
		}
	}
	return name
}

// lintHistogramSample validates one sample of a histogram family.
func lintHistogramSample(name string, labels map[string]string, value float64, lineNo int, hists map[string]*histSeries) error {
	key := func(base string) string {
		// Series identity: base name plus all labels except le, in sorted order.
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString(base)
		for _, k := range keys {
			fmt.Fprintf(&b, "{%s=%q}", k, labels[k])
		}
		return b.String()
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		base := strings.TrimSuffix(name, "_bucket")
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, name)
		}
		k := key(base)
		hs := hists[k]
		if hs == nil {
			hs = &histSeries{lastLE: math.Inf(-1), lastCum: -1, firstRef: lineNo}
			hists[k] = hs
		}
		if le == "+Inf" {
			hs.sawInf = true
			hs.infValue = value
			if value < hs.lastCum {
				return fmt.Errorf("line %d: +Inf bucket %v below prior cumulative %v", lineNo, value, hs.lastCum)
			}
			return nil
		}
		leV, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("line %d: unparseable le %q", lineNo, le)
		}
		if leV <= hs.lastLE {
			return fmt.Errorf("line %d: bucket le %v not increasing (prev %v)", lineNo, leV, hs.lastLE)
		}
		if value < hs.lastCum {
			return fmt.Errorf("line %d: bucket count %v decreasing (prev %v)", lineNo, value, hs.lastCum)
		}
		hs.lastLE, hs.lastCum = leV, value
	case strings.HasSuffix(name, "_count"):
		k := key(strings.TrimSuffix(name, "_count"))
		hs := hists[k]
		if hs == nil {
			hs = &histSeries{lastLE: math.Inf(-1), lastCum: -1, firstRef: lineNo}
			hists[k] = hs
		}
		hs.count = value
		hs.sawCount = true
	}
	return nil
}
