// Embedded observability server: the `-listen :addr` layer of cmd/katara
// and cmd/kexp. Serves the pipeline's live state over HTTP with only the
// standard library:
//
//	/metrics        Prometheus text exposition of every counter, stage
//	                timer, and latency histogram (scrape this)
//	/healthz        liveness probe, always 200 once the listener is up
//	/progress       live run state as JSON (current stage, tuples
//	                annotated / total, crowd budget remaining)
//	/debug/pprof/   the runtime profiler endpoints
//
// The server reads the pipeline through the same atomic counters the
// workers write, so scraping mid-run is safe and requires no pause.

package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// Progress is the live run state served at /progress.
type Progress struct {
	// Stage is the innermost active pipeline stage, "" when idle.
	Stage string `json:"stage"`
	// TuplesAnnotated / TuplesTotal report annotation progress. Total is 0
	// when the serving binary did not declare it.
	TuplesAnnotated int64 `json:"tuples_annotated"`
	TuplesTotal     int64 `json:"tuples_total,omitempty"`
	// CrowdQuestions counts questions consumed so far.
	CrowdQuestions int64 `json:"crowd_questions"`
	// BudgetQuestionsRemaining is the question budget headroom; -1 means
	// unlimited.
	BudgetQuestionsRemaining int64 `json:"budget_questions_remaining"`
	// Done reports that the run completed (the server may linger for late
	// scrapes).
	Done bool `json:"done"`
}

// Server serves the observability endpoints for one pipeline. Construct
// with NewServer, then Start (own listener) or mount Handler() yourself.
// All methods are safe on a nil *Server, so call sites can hold an optional
// server without guarding.
type Server struct {
	p *Pipeline

	totalTuples atomic.Int64
	budgetQ     atomic.Int64 // 0 = unlimited
	done        atomic.Bool

	// ShutdownGrace bounds how long Close waits for in-flight requests to
	// finish before severing their connections (0 = DefaultShutdownGrace).
	// Set it before Close; scrapers mid-/metrics get this long to drain.
	ShutdownGrace time.Duration

	ln   net.Listener
	srv  *http.Server
	errc chan error

	// requestGate, when non-nil, runs at the top of every request — a test
	// hook to hold a request in flight while Close executes.
	requestGate func()
}

// DefaultShutdownGrace is how long Close lets in-flight requests drain
// before falling back to a hard close.
const DefaultShutdownGrace = 2 * time.Second

// NewServer returns a server exposing p. p may be nil (endpoints then serve
// zeros), but normally it is the pipeline passed to the run via
// Options.Pipeline.
func NewServer(p *Pipeline) *Server {
	return &Server{p: p}
}

// SetTotalTuples declares the table size for /progress.
func (s *Server) SetTotalTuples(n int) {
	if s == nil {
		return
	}
	s.totalTuples.Store(int64(n))
}

// SetQuestionBudget declares the run's crowd-question budget for /progress
// (0 = unlimited).
func (s *Server) SetQuestionBudget(n int) {
	if s == nil {
		return
	}
	s.budgetQ.Store(int64(n))
}

// MarkDone flags the run as completed in /progress.
func (s *Server) MarkDone() {
	if s == nil {
		return
	}
	s.done.Store(true)
}

// progress assembles the live run state.
func (s *Server) progress() Progress {
	p := Progress{
		Stage:                    s.p.CurrentStage(),
		TuplesAnnotated:          s.p.Get(TuplesAnnotated),
		TuplesTotal:              s.totalTuples.Load(),
		CrowdQuestions:           s.p.Get(CrowdQuestions),
		BudgetQuestionsRemaining: -1,
		Done:                     s.done.Load(),
	}
	if b := s.budgetQ.Load(); b > 0 {
		rem := b - p.CrowdQuestions
		if rem < 0 {
			rem = 0
		}
		p.BudgetQuestionsRemaining = rem
	}
	return p
}

// Handler returns the endpoint mux (also used directly by tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "katara observability endpoints:\n"+
			"  /metrics        Prometheus text exposition\n"+
			"  /healthz        liveness probe\n"+
			"  /progress       live run state (JSON)\n"+
			"  /debug/pprof/   runtime profiles\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.p.Snapshot()
		if snap == nil {
			// Nil pipeline: serve the full zero-valued metric set so scrapers
			// see a stable exposition either way.
			snap = New().Snapshot()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WriteProm(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.progress())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if s.requestGate != nil {
		gate := s.requestGate
		inner := mux
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			gate()
			inner.ServeHTTP(w, r)
		})
	}
	return mux
}

// Start listens on addr (e.g. ":8080", "127.0.0.1:0") and serves in the
// background. It returns the bound address, so ":0" callers can discover
// the port.
func (s *Server) Start(addr string) (net.Addr, error) {
	if s == nil {
		return nil, fmt.Errorf("telemetry: Start on nil Server")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.errc = make(chan error, 1)
	go func() { s.errc <- s.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Close shuts the server down gracefully: the listener stops accepting new
// connections immediately, but requests already in flight (a scraper
// mid-/metrics, a dashboard polling /progress) get ShutdownGrace to
// complete before their connections are severed with a hard Close. Safe on
// a nil or never-started server.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	grace := s.ShutdownGrace
	if grace <= 0 {
		grace = DefaultShutdownGrace
	}
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	err := s.srv.Shutdown(ctx)
	cancel()
	if err != nil {
		// Grace expired with requests still in flight: sever them. Shutdown
		// already closed the listener, so this only kills stragglers.
		err = s.srv.Close()
	}
	<-s.errc // reap the serve goroutine (returns after Shutdown or Close)
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
