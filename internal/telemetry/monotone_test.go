package telemetry

import (
	"strings"
	"testing"
)

func TestCheckMonotone(t *testing.T) {
	prev := map[string]float64{}
	scrape1 := []byte(`# HELP foo_total Things.
# TYPE foo_total counter
foo_total 5
foo_bucket{le="1"} 2
foo_count 3
foo_sum 1.5
bar_gauge 10
`)
	if err := CheckMonotone(prev, scrape1); err != nil {
		t.Fatalf("first scrape: %v", err)
	}

	// Counters grow, the gauge drops: both fine.
	scrape2 := []byte("foo_total 6\nfoo_bucket{le=\"1\"} 2\nfoo_count 4\nfoo_sum 1.5\nbar_gauge 1\n")
	if err := CheckMonotone(prev, scrape2); err != nil {
		t.Fatalf("second scrape: %v", err)
	}

	// A cumulative series going backwards is the violation.
	if err := CheckMonotone(prev, []byte("foo_total 4\n")); err == nil || !strings.Contains(err.Error(), "backwards") {
		t.Fatalf("regressing counter: err = %v, want backwards error", err)
	}

	// Labeled series are tracked per label set.
	prev2 := map[string]float64{}
	if err := CheckMonotone(prev2, []byte("h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 9\n")); err != nil {
		t.Fatal(err)
	}
	if err := CheckMonotone(prev2, []byte("h_bucket{le=\"1\"} 4\nh_bucket{le=\"2\"} 9\n")); err == nil {
		t.Fatal("per-label regression not caught")
	}

	// Unparseable cumulative values are an error, not a skip.
	if err := CheckMonotone(map[string]float64{}, []byte("x_total oops\n")); err == nil {
		t.Fatal("unparseable value not caught")
	}
}
