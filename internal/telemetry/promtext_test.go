package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// populatedSnapshot builds a snapshot with every metric family exercised:
// counters, nested stages, and histograms with multi-bucket spreads.
func populatedSnapshot() *Snapshot {
	p := New()
	p.Add(CrowdQuestions, 14)
	p.Add(KBLookups, 900)
	p.Inc(ResolverHits)
	p.Inc(ResolverMisses)
	for _, s := range []Stage{StageDiscover, StageValidate, StageAnnotate} {
		p.EndStage(s, p.StartStage(s))
	}
	rs := p.StartStage(StageRepair)
	p.EndStage(StageBuildIndex, p.StartStage(StageBuildIndex))
	p.EndStage(StageRepair, rs)
	for i := 1; i <= 50; i++ {
		p.Observe(HistCrowdQuestion, time.Duration(i)*time.Millisecond)
		p.Observe(HistResolverLookup, time.Duration(i*i)*time.Nanosecond)
	}
	p.Observe(HistAnnotateTuple, 3*time.Microsecond)
	return p.Snapshot()
}

func TestWritePromPassesLint(t *testing.T) {
	var buf bytes.Buffer
	snap := populatedSnapshot()
	if err := snap.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	if err := LintExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("exposition fails its own linter: %v\n%s", err, out)
	}
	// The acceptance contract: every counter at a stable name, all five
	// stages, and every histogram family present even when sparse.
	for _, want := range []string{
		"katara_crowd_questions_total 14",
		"katara_kb_lookups_total 900",
		"katara_graphs_enumerated_total 0", // zero counters still exposed
		`katara_stage_duration_seconds_total{stage="discover"}`,
		`katara_stage_runs_total{stage="build-index"} 1`,
		`katara_op_duration_seconds_bucket{op="crowd-question",le="+Inf"} 50`,
		`katara_op_duration_seconds_count{op="crowd-question"} 50`,
		`katara_op_duration_seconds_count{op="repair-topk"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	counters := strings.Count(out, "Pipeline counter ") // one HELP line per counter family
	if counters < 12 {
		t.Errorf("exposition declares %d counter families, want >= 12", counters)
	}
	for _, stage := range []string{"discover", "validate", "annotate", "build-index", "repair"} {
		if !strings.Contains(out, `{stage="`+stage+`"}`) {
			t.Errorf("exposition missing stage %q", stage)
		}
	}
	for _, op := range []string{"crowd-question", "rank-join-iteration", "annotate-tuple", "repair-topk", "resolver-lookup"} {
		if !strings.Contains(out, `op="`+op+`"`) {
			t.Errorf("exposition missing histogram op %q", op)
		}
	}
}

func TestWritePromNilAndEmpty(t *testing.T) {
	var nilSnap *Snapshot
	var buf bytes.Buffer
	if err := nilSnap.WriteProm(&buf); err != nil {
		t.Fatalf("nil WriteProm: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil snapshot wrote %q", buf.String())
	}
	// An untouched pipeline's snapshot — what /metrics serves before a run
	// starts — must still be a parseable exposition with the full metric set.
	buf.Reset()
	if err := New().Snapshot().WriteProm(&buf); err != nil {
		t.Fatalf("zero WriteProm: %v", err)
	}
	if err := LintExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("zero exposition fails lint: %v\n%s", err, buf.String())
	}
	// A bare empty Snapshot literal has no samples at all, and the strict
	// linter calls that out — it is not a valid scrape page.
	buf.Reset()
	if err := (&Snapshot{}).WriteProm(&buf); err != nil {
		t.Fatalf("empty WriteProm: %v", err)
	}
	if err := LintExposition(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "no samples") {
		t.Fatalf("bare empty snapshot should lint as sample-less, got %v", err)
	}
}

func TestLintExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty", "", "no samples"},
		{"comments only", "# HELP x y\n# TYPE x counter\n", "no samples"},
		{"bad metric name", "2foo 1\n", "invalid metric name"},
		{"sample without value", "foo\n", "without value"},
		{"unparseable value", "foo bar\n", "unparseable sample value"},
		{"bad timestamp", "foo 1 notatime\n", "unparseable timestamp"},
		{"too many fields", "foo 1 2 3\n", "expected value"},
		{"unterminated labels", `foo{a="b" 1` + "\n", "unterminated"},
		{"bad label name", `foo{2a="b"} 1` + "\n", "invalid label name"},
		{"unquoted label value", "foo{a=b} 1\n", "not quoted"},
		{"duplicate label", `foo{a="1",a="2"} 1` + "\n", "duplicate label"},
		{"bad escape", `foo{a="\q"} 1` + "\n", "invalid escape"},
		{"unterminated quote", `foo{a="b} 1` + "\n", "unterminated"},
		{"unknown type", "# TYPE foo widget\nfoo 1\n", "unknown metric type"},
		{"duplicate type", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n", "duplicate TYPE"},
		{
			"type after samples",
			"foo 1\n# TYPE foo counter\n",
			"after its samples",
		},
		{
			"bucket without le",
			"# TYPE h histogram\nh_bucket 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"without le label",
		},
		{
			"le not increasing",
			"# TYPE h histogram\n" +
				`h_bucket{le="2"} 1` + "\n" +
				`h_bucket{le="1"} 2` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\n" +
				"h_count 2\n",
			"not increasing",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="2"} 3` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" +
				"h_count 5\n",
			"decreasing",
		},
		{
			"missing +Inf bucket",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				"h_count 5\n",
			"no le=\"+Inf\"",
		},
		{
			"+Inf below prior cumulative",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="+Inf"} 3` + "\n" +
				"h_count 5\n",
			"below prior cumulative",
		},
		{
			"+Inf disagrees with count",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" +
				"h_count 7\n",
			"!= _count",
		},
		{
			"unparseable le",
			"# TYPE h histogram\n" +
				`h_bucket{le="wide"} 5` + "\n" +
				`h_bucket{le="+Inf"} 5` + "\n" +
				"h_count 5\n",
			"unparseable le",
		},
		{"malformed TYPE comment", "# TYPE foo\nfoo 1\n", "malformed TYPE"},
		{"malformed HELP comment", "# HELP 2foo desc\nfoo 1\n", "malformed HELP"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := LintExposition(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("linter accepted malformed input:\n%s", c.in)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestLintExpositionAcceptsValid(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"untyped sample", "foo 1\n"},
		{"special floats", "a +Inf\nb -Inf\nc NaN\n"},
		{"timestamped", "foo 1 1712345678901\n"},
		{"bare comment", "# just a note\nfoo 1\n"},
		{"escaped label value", `foo{path="C:\\data\"x\"\n"} 1` + "\n"},
		{
			"two histogram series",
			"# TYPE h histogram\n" +
				`h_bucket{op="a",le="1"} 2` + "\n" +
				`h_bucket{op="a",le="+Inf"} 2` + "\n" +
				`h_count{op="a"} 2` + "\n" +
				`h_bucket{op="b",le="0.5"} 1` + "\n" +
				`h_bucket{op="b",le="+Inf"} 4` + "\n" +
				`h_count{op="b"} 4` + "\n" +
				`h_sum{op="b"} 0.25` + "\n",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := LintExposition(strings.NewReader(c.in)); err != nil {
				t.Fatalf("linter rejected valid input: %v\n%s", err, c.in)
			}
		})
	}
}
