package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeJournal parses a JSONL journal into records, failing on any
// malformed line.
func decodeJournal(t *testing.T, buf *bytes.Buffer) []SpanRecord {
	t.Helper()
	var recs []SpanRecord
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("malformed journal line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	return recs
}

// checkTree asserts the journal invariants: unique ids, exactly one root,
// every parent exists, and parent ids precede child ids (ids are allocated
// at span start, so a parent always starts before its children).
func checkTree(t *testing.T, recs []SpanRecord) {
	t.Helper()
	ids := map[uint64]bool{}
	roots := 0
	for _, r := range recs {
		if r.ID == 0 {
			t.Fatalf("span %q has id 0", r.Name)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		ids[r.ID] = true
		if r.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("journal has %d roots, want exactly 1", roots)
	}
	for _, r := range recs {
		if r.Parent == 0 {
			continue
		}
		if !ids[r.Parent] {
			t.Fatalf("span %d (%s) references missing parent %d", r.ID, r.Name, r.Parent)
		}
		if r.Parent >= r.ID {
			t.Fatalf("span %d (%s) has parent %d >= its own id", r.ID, r.Name, r.Parent)
		}
	}
}

func TestJournalSingleRootedTree(t *testing.T) {
	var buf bytes.Buffer
	p := New()
	p.SetJournal(NewJournal(&buf))

	root := p.PushSpan("clean")
	root.SetStr("table", "Soccer")
	root.SetInt("rows", 42)

	start := p.StartStage(StageDiscover)
	for i := 0; i < 3; i++ {
		sp := p.StartSpan("rank-join-iteration")
		sp.SetInt("depth", int64(i))
		sp.End()
	}
	p.EndStage(StageDiscover, start)

	// Nested stages: build-index inside repair, like the real pipeline.
	start = p.StartStage(StageRepair)
	bi := p.StartStage(StageBuildIndex)
	p.EndStage(StageBuildIndex, bi)
	sp := p.StartSpan("repair-topk")
	sp.End()
	p.EndStage(StageRepair, start)

	root.End()

	recs := decodeJournal(t, &buf)
	if len(recs) != 8 {
		t.Fatalf("journal has %d spans, want 8", len(recs))
	}
	checkTree(t, recs)

	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["clean"].Parent != 0 {
		t.Fatalf("clean should be the root, has parent %d", byName["clean"].Parent)
	}
	if got := byName["clean"].Attrs["table"]; got != "Soccer" {
		t.Fatalf("clean table attr = %v", got)
	}
	if byName["discover"].Parent != byName["clean"].ID {
		t.Fatal("discover stage span should be a child of clean")
	}
	if byName["rank-join-iteration"].Parent != byName["discover"].ID {
		t.Fatal("rank-join iterations should nest under the discover stage")
	}
	if byName["build-index"].Parent != byName["repair"].ID {
		t.Fatal("build-index should nest under repair")
	}
	if byName["repair-topk"].Parent != byName["repair"].ID {
		t.Fatal("repair-topk leaf should attach to the repair stage (innermost after build-index ended)")
	}
	// Children end (and hence are emitted) before their parents, so every
	// parent's line appears after all of its children's lines.
	emitPos := map[uint64]int{}
	for i, r := range recs {
		emitPos[r.ID] = i
	}
	for i, r := range recs {
		if r.Parent != 0 && emitPos[r.Parent] < i {
			t.Fatalf("parent %d emitted before child %d", r.Parent, r.ID)
		}
	}
	if j := p.Journal(); j.Spans() != 8 || j.Err() != nil {
		t.Fatalf("journal Spans=%d Err=%v", j.Spans(), j.Err())
	}
}

func TestConcurrentLeafSpans(t *testing.T) {
	var buf bytes.Buffer
	p := New()
	p.SetJournal(NewJournal(&buf))
	root := p.PushSpan("clean")
	start := p.StartStage(StageAnnotate)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := p.StartSpan("resolve-miss")
				sp.SetInt("worker", int64(w))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	p.EndStage(StageAnnotate, start)
	root.End()
	recs := decodeJournal(t, &buf)
	if len(recs) != 8*50+2 {
		t.Fatalf("journal has %d spans, want %d", len(recs), 8*50+2)
	}
	checkTree(t, recs)
	var stageID uint64
	for _, r := range recs {
		if r.Name == "annotate" {
			stageID = r.ID
		}
	}
	for _, r := range recs {
		if r.Name == "resolve-miss" && r.Parent != stageID {
			t.Fatalf("leaf span %d has parent %d, want stage %d", r.ID, r.Parent, stageID)
		}
	}
}

func TestSpanDisabledPath(t *testing.T) {
	// nil pipeline and journal-less pipeline both yield inert spans.
	var nilP *Pipeline
	for _, p := range []*Pipeline{nilP, New()} {
		sp := p.StartSpan("x")
		if sp.Enabled() {
			t.Fatal("span should be disabled")
		}
		sp.SetInt("a", 1)
		sp.SetStr("b", "2")
		sp.SetFloat("c", 3)
		sp.End()
		sp.End() // double End is a no-op
		ps := p.PushSpan("y")
		ps.End()
	}
	var zero Span
	zero.SetInt("a", 1)
	zero.End()
	if (*Journal)(nil).Err() != nil || (*Journal)(nil).Spans() != 0 {
		t.Fatal("nil journal should be inert")
	}
	var nilP2 *Pipeline
	nilP2.SetJournal(NewJournal(&bytes.Buffer{})) // must not panic
	if nilP2.Journal() != nil {
		t.Fatal("nil pipeline has no journal")
	}
}

func TestSpanZeroAllocDisabled(t *testing.T) {
	var p *Pipeline
	allocs := testing.AllocsPerRun(100, func() {
		sp := p.StartSpan("x")
		sp.SetInt("k", 1)
		sp.SetStr("s", "v")
		sp.End()
		start := p.StartTimer()
		p.ObserveSince(HistCrowdQuestion, start)
		p.Observe(HistRankJoinIter, time.Millisecond)
		p.Inc(CrowdQuestions)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocated %.1f times per op", allocs)
	}
	// Enabled pipeline without a journal: spans stay free, histograms are
	// atomic adds only.
	p2 := New()
	allocs = testing.AllocsPerRun(100, func() {
		sp := p2.StartSpan("x")
		sp.SetInt("k", 1)
		sp.End()
		p2.Observe(HistRankJoinIter, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("journal-less instrumentation allocated %.1f times per op", allocs)
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestJournalWriteErrorSticks(t *testing.T) {
	wantErr := errors.New("disk full")
	p := New()
	p.SetJournal(NewJournal(failWriter{err: wantErr}))
	sp := p.StartSpan("x")
	sp.End()
	if err := p.Journal().Err(); !errors.Is(err, wantErr) {
		t.Fatalf("journal Err = %v, want %v", err, wantErr)
	}
}

func TestJournalTimestamps(t *testing.T) {
	var buf bytes.Buffer
	p := New()
	p.SetJournal(NewJournal(&buf))
	sp := p.StartSpan("op")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	recs := decodeJournal(t, &buf)
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].StartUS < 0 {
		t.Fatalf("start_us negative: %d", recs[0].StartUS)
	}
	if recs[0].DurUS < 1000 {
		t.Fatalf("dur_us = %d, want >= 1000 (slept 2ms)", recs[0].DurUS)
	}
	if !strings.Contains(buf.String(), `"name":"op"`) {
		t.Fatalf("journal line missing name: %s", buf.String())
	}
}
