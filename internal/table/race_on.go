//go:build race

package table

// raceEnabled reports whether the race detector is active; its
// instrumentation adds per-call allocations that break allocation tests.
const raceEnabled = true
