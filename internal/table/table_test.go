package table

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Table {
	t := New("soccer", "A", "B", "C")
	t.Append("Rossi", "Italy", "Rome")
	t.Append("Klate", "S. Africa", "Pretoria")
	t.Append("Pirlo", "Italy", "Madrid")
	return t
}

func TestAppendAndAccess(t *testing.T) {
	tb := sample()
	if tb.NumRows() != 3 || tb.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tb.NumRows(), tb.NumCols())
	}
	if tb.Cell(2, 2) != "Madrid" {
		t.Fatalf("Cell(2,2) = %q", tb.Cell(2, 2))
	}
	if tb.Column("B") != 1 || tb.Column("Z") != -1 {
		t.Fatal("Column lookup broken")
	}
	got := tb.ColumnValues(1)
	if len(got) != 3 || got[0] != "Italy" {
		t.Fatalf("ColumnValues = %v", got)
	}
}

func TestAppendArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	sample().Append("only-one")
}

func TestCloneIsDeep(t *testing.T) {
	a := sample()
	b := a.Clone()
	b.Rows[0][0] = "changed"
	if a.Rows[0][0] == "changed" {
		t.Fatal("Clone shares row storage")
	}
	b.Columns[0] = "X"
	if a.Columns[0] == "X" {
		t.Fatal("Clone shares column storage")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	a := sample()
	a.Append(`comma, "quote"`, "new\nline", "")
	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSV("soccer", &buf)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 0 {
		t.Fatalf("round trip diff: %v", diff)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("a,b\n1,2,3\n")); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestDiff(t *testing.T) {
	a := sample()
	b := a.Clone()
	b.Rows[2][2] = "Rome"
	diff, err := a.Diff(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff) != 1 || diff[0] != (CellRef{Row: 2, Col: 2}) {
		t.Fatalf("diff = %v", diff)
	}
	c := New("other", "A")
	if _, err := a.Diff(c); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestInjectErrorsRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tb := New("t", "A", "B")
	for i := 0; i < 5000; i++ {
		tb.Append("v"+string(rune('a'+i%26)), "w"+string(rune('a'+i%17)))
	}
	clean := tb.Clone()
	injected := InjectErrors(tb, []int{0, 1}, 0.1, rng)
	frac := float64(len(injected)) / float64(tb.NumRows())
	if frac < 0.07 || frac > 0.13 {
		t.Fatalf("injection rate %f, want ~0.10", frac)
	}
	// Every reported cell must actually differ from the clean table, and
	// nothing else may differ.
	diff, _ := clean.Diff(tb)
	if len(diff) != len(injected) {
		t.Fatalf("diff has %d cells, injected %d", len(diff), len(injected))
	}
	seen := map[CellRef]bool{}
	for _, c := range diff {
		seen[c] = true
	}
	for _, c := range injected {
		if !seen[c] {
			t.Fatalf("injected cell %v not in diff", c)
		}
	}
}

func TestInjectErrorsRespectsColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tb := New("t", "A", "B", "C")
	for i := 0; i < 200; i++ {
		tb.Append("a"+string(rune('0'+i%10)), "b"+string(rune('0'+i%7)), "c"+string(rune('0'+i%5)))
	}
	injected := InjectErrors(tb, []int{1}, 0.5, rng)
	if len(injected) == 0 {
		t.Fatal("no errors injected")
	}
	for _, c := range injected {
		if c.Col != 1 {
			t.Fatalf("error injected outside allowed columns: %v", c)
		}
	}
}

func TestInjectErrorsConstantColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tb := New("t", "A")
	for i := 0; i < 50; i++ {
		tb.Append("same")
	}
	// A constant column can only be corrupted by typos; whatever happens,
	// reported refs must be real changes.
	clean := tb.Clone()
	injected := InjectErrors(tb, []int{0}, 1.0, rng)
	diff, _ := clean.Diff(tb)
	if len(diff) != len(injected) {
		t.Fatalf("diff %d vs injected %d", len(diff), len(injected))
	}
}

func TestInjectErrorsDeterministic(t *testing.T) {
	mk := func() (*Table, []CellRef) {
		tb := New("t", "A", "B")
		for i := 0; i < 300; i++ {
			tb.Append("a"+string(rune('0'+i%10)), "b"+string(rune('0'+i%9)))
		}
		refs := InjectErrors(tb, []int{0, 1}, 0.2, rand.New(rand.NewSource(99)))
		return tb, refs
	}
	t1, r1 := mk()
	t2, r2 := mk()
	if len(r1) != len(r2) {
		t.Fatal("nondeterministic injection count")
	}
	if d, _ := t1.Diff(t2); len(d) != 0 {
		t.Fatal("nondeterministic corruption")
	}
}

func TestTypoProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(s string) bool {
		out := typo(s, rng)
		// A typo changes length by at most 1 and never panics.
		dl := len([]rune(out)) - len([]rune(s))
		if s == "" {
			return out == "x"
		}
		return dl >= -1 && dl <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
