// Interned columnar backing: per-column string dictionaries plus int32 cell
// codes, grouped by distinct row signature. Dirty tables repeat a small set
// of distinct values (the paper's 316K-row Person table aggregates extracted
// bios, so the same person recurs thousands of times), so the cleaning
// pipeline wants equality to be an int compare and per-row work to collapse
// onto per-distinct-signature work. The Interned view is derived from the
// Table and never replaces it — .Rows stays the API — and it is built fresh
// by each consumer (Rows may be mutated directly, e.g. by InjectErrors, so a
// cached view would have no invalidation hook).
package table

import (
	"encoding/binary"
)

// Dict is one column's string dictionary: a bijection between the column's
// distinct cell values and dense int32 codes in first-occurrence order.
type Dict struct {
	byVal map[string]int32
	vals  []string
}

func newDict() *Dict {
	return &Dict{byVal: make(map[string]int32)}
}

// intern returns v's code, assigning the next free code on first sight.
func (d *Dict) intern(v string) int32 {
	if c, ok := d.byVal[v]; ok {
		return c
	}
	c := int32(len(d.vals))
	d.byVal[v] = c
	d.vals = append(d.vals, v)
	return c
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.vals) }

// Value returns the canonical string stored under code.
func (d *Dict) Value(code int32) string { return d.vals[code] }

// Code returns the code of v, or -1 when v never occurred in the column.
func (d *Dict) Code(v string) int32 {
	if c, ok := d.byVal[v]; ok {
		return c
	}
	return -1
}

// Group is one distinct row signature: the representative row (first
// occurrence) plus every row sharing the signature, in ascending row order.
type Group struct {
	Rep  int
	Rows []int
}

// Interned is the columnar dictionary view of a Table: per-column Dicts,
// row-major cell codes, and the rows grouped by signature (the tuple of
// column codes) in first-occurrence order. Two rows are duplicates exactly
// when they share a group; all per-row work that is a pure function of the
// tuple values can then run once per group and fan out.
//
// The view is immutable and safe for concurrent readers. It snapshots the
// Table at construction time: mutate Rows and the view is stale — rebuild it.
type Interned struct {
	cols    int
	rows    int
	dicts   []*Dict
	codes   []int32 // row-major: codes[row*cols+col]
	groupOf []int32
	groups  []Group
}

// Interned builds the columnar dictionary view of t. Cost is one map probe
// per cell plus one per row; memory is 4 bytes per cell plus the dictionaries
// of distinct values.
func (t *Table) Interned() *Interned {
	cols := t.NumCols()
	in := &Interned{
		cols:    cols,
		rows:    len(t.Rows),
		dicts:   make([]*Dict, cols),
		codes:   make([]int32, len(t.Rows)*cols),
		groupOf: make([]int32, len(t.Rows)),
	}
	for j := range in.dicts {
		in.dicts[j] = newDict()
	}
	sig := make([]byte, 4*cols)
	byKey := make(map[string]int32)
	var sizes []int32 // group -> member count, filled in pass 1
	for i, row := range t.Rows {
		base := i * cols
		for j := 0; j < cols && j < len(row); j++ {
			code := in.dicts[j].intern(row[j])
			in.codes[base+j] = code
			binary.LittleEndian.PutUint32(sig[4*j:], uint32(code))
		}
		// string(sig) in the map read does not allocate; the insert path
		// copies the key once per distinct signature only.
		g, ok := byKey[string(sig)]
		if !ok {
			g = int32(len(sizes))
			byKey[string(sig)] = g
			sizes = append(sizes, 0)
		}
		in.groupOf[i] = g
		sizes[g]++
	}
	// Pass 2: carve every group's member list out of one flat allocation —
	// the build stays distinct-bounded instead of paying append growth per
	// group (pinned by TestInternedAllocationLean).
	flat := make([]int, len(t.Rows))
	in.groups = make([]Group, len(sizes))
	off := 0
	for g, n := range sizes {
		in.groups[g].Rows = flat[off : off : off+int(n)]
		off += int(n)
	}
	for i := range t.Rows {
		g := in.groupOf[i]
		in.groups[g].Rows = append(in.groups[g].Rows, i)
		if len(in.groups[g].Rows) == 1 {
			in.groups[g].Rep = i
		}
	}
	return in
}

// Extend grows the view in place over rows appended to t since the view was
// built (or last extended), preserving every existing dictionary code and
// group ID: after Extend, the view is observationally identical to a fresh
// t.Interned() — new distinct values take the next free codes and new
// signatures the next group IDs, both in first-occurrence order, exactly as
// a from-scratch build over the merged table would assign them. Cost is
// proportional to the delta, not the table.
//
// Extend assumes rectangular rows (every row as wide as the header), the
// invariant the ingestion paths enforce. It is a write to the view: callers
// must serialise it against concurrent readers, the same single-writer
// contract the KB follows between pipeline stages.
func (in *Interned) Extend(t *Table) {
	cols := in.cols
	newRows := len(t.Rows)
	if newRows <= in.rows {
		return
	}
	// Rebuild the signature map from each group's representative codes; the
	// construction pass deliberately does not retain it.
	sig := make([]byte, 4*cols)
	byKey := make(map[string]int32, len(in.groups))
	for g := range in.groups {
		base := in.groups[g].Rep * cols
		for j := 0; j < cols; j++ {
			binary.LittleEndian.PutUint32(sig[4*j:], uint32(in.codes[base+j]))
		}
		byKey[string(sig)] = int32(g)
	}
	in.codes = append(in.codes, make([]int32, (newRows-in.rows)*cols)...)
	for i := in.rows; i < newRows; i++ {
		row := t.Rows[i]
		base := i * cols
		for j := 0; j < cols && j < len(row); j++ {
			code := in.dicts[j].intern(row[j])
			in.codes[base+j] = code
			binary.LittleEndian.PutUint32(sig[4*j:], uint32(code))
		}
		g, ok := byKey[string(sig)]
		if !ok {
			g = int32(len(in.groups))
			byKey[string(sig)] = g
			in.groups = append(in.groups, Group{Rep: i})
		}
		in.groupOf = append(in.groupOf, g)
		// Existing groups' member lists were carved capacity-capped from the
		// build's flat arena, so appending reallocates the touched group's
		// backing without clobbering its neighbours.
		in.groups[g].Rows = append(in.groups[g].Rows, i)
	}
	in.rows = newRows
}

// NumRows returns the number of rows the view covers.
func (in *Interned) NumRows() int { return in.rows }

// NumCols returns the number of columns.
func (in *Interned) NumCols() int { return in.cols }

// NumGroups returns the number of distinct row signatures.
func (in *Interned) NumGroups() int { return len(in.groups) }

// Groups returns the signature groups in first-occurrence order. Shared
// slice; read-only.
func (in *Interned) Groups() []Group { return in.groups }

// Group returns the i-th signature group.
func (in *Interned) Group(i int) Group { return in.groups[i] }

// GroupOf returns the signature-group index of row.
func (in *Interned) GroupOf(row int) int { return int(in.groupOf[row]) }

// Code returns the dictionary code of cell (row, col).
func (in *Interned) Code(row, col int) int32 { return in.codes[row*in.cols+col] }

// Dict returns column col's dictionary.
func (in *Interned) Dict(col int) *Dict { return in.dicts[col] }

// RowsEqual reports whether rows i and j hold identical tuples — an int
// compare, no string comparison.
func (in *Interned) RowsEqual(i, j int) bool { return in.groupOf[i] == in.groupOf[j] }

// Compact rebuilds t's row storage in place into a single flat cell arena
// with every repeated cell value sharing one canonical string instance.
// Semantically a no-op (cell values are unchanged); the point is memory: a
// 316K-row table built from decoded JSON or CSV holds one string header per
// cell and often one backing array each, where the compacted table holds one
// []string arena and one backing string per distinct value. Returns t.
func (t *Table) Compact() *Table {
	cols := t.NumCols()
	arena := make([]string, 0, len(t.Rows)*cols)
	canon := make(map[string]string)
	rows := make([][]string, len(t.Rows))
	for i, row := range t.Rows {
		base := len(arena)
		for _, v := range row {
			cv, ok := canon[v]
			if !ok {
				canon[v] = v
				cv = v
			}
			arena = append(arena, cv)
		}
		rows[i] = arena[base:len(arena):len(arena)]
	}
	t.Rows = rows
	t.arena = arena[:len(arena):len(arena)]
	return t
}
