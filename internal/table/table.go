// Package table implements the relational-table substrate: the (possibly
// dirty) input tables KATARA cleans, CSV I/O, seeded error injection for the
// repair experiments (§7.4: "we injected 10% random errors into columns that
// are covered by the patterns"), and cell-level diffing against ground truth.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
)

// Table is a named relation. Column headers may be opaque ("A", "B", ...) —
// KATARA never relies on them (§4.1).
type Table struct {
	Name    string
	Columns []string
	Rows    [][]string

	// arena, when non-nil, is a flat cell store that Append carves rows out
	// of: one allocation for many rows instead of one []string per row. It
	// is populated by Grow and Compact; tables built without them behave
	// exactly as before.
	arena []string
}

// New returns an empty table with the given columns.
func New(name string, columns ...string) *Table {
	return &Table{Name: name, Columns: columns}
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the number of attributes.
func (t *Table) NumCols() int { return len(t.Columns) }

// Grow pre-allocates room for n more rows: the row-pointer slice plus a flat
// cell arena that subsequent Appends carve full-capacity sub-slices out of.
// Purely an allocation hint — semantics are unchanged either way.
func (t *Table) Grow(n int) {
	if n <= 0 || len(t.Columns) == 0 {
		return
	}
	if cap(t.Rows)-len(t.Rows) < n {
		rows := make([][]string, len(t.Rows), len(t.Rows)+n)
		copy(rows, t.Rows)
		t.Rows = rows
	}
	if cap(t.arena)-len(t.arena) < n*len(t.Columns) {
		t.arena = make([]string, 0, n*len(t.Columns))
	}
}

// Append adds a tuple. It panics if the arity is wrong — a programming
// error, not an input error.
func (t *Table) Append(row ...string) {
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("table %s: row arity %d != %d", t.Name, len(row), len(t.Columns)))
	}
	if cap(t.arena)-len(t.arena) >= len(row) {
		base := len(t.arena)
		t.arena = append(t.arena, row...)
		// Full three-index cap: appends to one row can never spill into the
		// next row's cells.
		row = t.arena[base:len(t.arena):len(t.arena)]
	}
	t.Rows = append(t.Rows, row)
}

// Cell returns the value at (row, col).
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Column returns the index of the named column, or -1.
func (t *Table) Column(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// Clone deep-copies the table. The copy is arena-backed: all cells live in
// one flat allocation rather than one slice per row.
func (t *Table) Clone() *Table {
	nt := &Table{Name: t.Name, Columns: append([]string(nil), t.Columns...)}
	nt.Rows = make([][]string, len(t.Rows))
	var cells int
	for _, r := range t.Rows {
		cells += len(r)
	}
	arena := make([]string, 0, cells)
	for i, r := range t.Rows {
		base := len(arena)
		arena = append(arena, r...)
		nt.Rows[i] = arena[base:len(arena):len(arena)]
	}
	nt.arena = arena[:len(arena):len(arena)]
	return nt
}

// ColumnValues returns the values of column col in row order.
func (t *Table) ColumnValues(col int) []string {
	out := make([]string, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = r[col]
	}
	return out
}

// ReadCSV parses a table from CSV. The first record is the header.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading %s: %w", name, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("table: %s: empty input", name)
	}
	t := New(name, recs[0]...)
	for i, rec := range recs[1:] {
		if len(rec) != len(t.Columns) {
			return nil, fmt.Errorf("table: %s: row %d has %d fields, want %d", name, i+1, len(rec), len(t.Columns))
		}
		t.Rows = append(t.Rows, rec)
	}
	return t, nil
}

// WriteCSV serialises the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CellRef addresses one cell.
type CellRef struct{ Row, Col int }

// Diff returns the cells where t and other disagree. Tables must have the
// same shape.
func (t *Table) Diff(other *Table) ([]CellRef, error) {
	if t.NumRows() != other.NumRows() || t.NumCols() != other.NumCols() {
		return nil, fmt.Errorf("table: shape mismatch %dx%d vs %dx%d",
			t.NumRows(), t.NumCols(), other.NumRows(), other.NumCols())
	}
	var out []CellRef
	for i := range t.Rows {
		for j := range t.Rows[i] {
			if t.Rows[i][j] != other.Rows[i][j] {
				out = append(out, CellRef{Row: i, Col: j})
			}
		}
	}
	return out, nil
}

// InjectErrors corrupts the table in place: each tuple is modified with
// probability rate; a corrupted tuple gets one randomly chosen cell among
// cols overwritten with a wrong value drawn from the same column's domain
// (a different row's value) or, with small probability, a typo. It returns
// the corrupted cell references. This mirrors §7.4's error model.
func InjectErrors(t *Table, cols []int, rate float64, rng *rand.Rand) []CellRef {
	if len(cols) == 0 || t.NumRows() < 2 {
		return nil
	}
	var injected []CellRef
	for i := range t.Rows {
		if rng.Float64() >= rate {
			continue
		}
		col := cols[rng.Intn(len(cols))]
		orig := t.Rows[i][col]
		repl := orig
		for attempt := 0; attempt < 20 && repl == orig; attempt++ {
			if rng.Float64() < 0.15 {
				repl = typo(orig, rng)
			} else {
				repl = t.Rows[rng.Intn(len(t.Rows))][col]
			}
		}
		if repl == orig {
			continue // column is constant; nothing to corrupt with
		}
		t.Rows[i][col] = repl
		injected = append(injected, CellRef{Row: i, Col: col})
	}
	return injected
}

// typo applies a random single-character edit.
func typo(s string, rng *rand.Rand) string {
	if s == "" {
		return "x"
	}
	r := []rune(s)
	i := rng.Intn(len(r))
	switch rng.Intn(3) {
	case 0: // substitution
		r[i] = rune('a' + rng.Intn(26))
	case 1: // deletion
		r = append(r[:i], r[i+1:]...)
	default: // duplication
		r = append(r[:i+1], r[i:]...)
	}
	return string(r)
}
