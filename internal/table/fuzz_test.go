package table

import (
	"bytes"
	"testing"
)

// FuzzTableLoad feeds arbitrary bytes through ReadCSV and, for anything that
// parses, pushes the table around the WriteCSV → ReadCSV loop:
//
//   - parsing must never panic, and a parsed table is rectangular (every row
//     at header arity);
//   - the round trip converges to a byte-identical fixpoint within a few
//     cycles (it is not the identity: encoding/csv skips blank lines on
//     read, and a single empty field writes back as a blank line, so
//     degenerate rows can be dropped once before the output stabilises);
//   - re-reading written output never grows the row count.
//
// A written table that fails to re-parse is tolerated only because of that
// same quirk: an all-empty header serialises as a blank line, which the
// reader skips, leaving a different (possibly empty) document.
func FuzzTableLoad(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n3,4\n"))
	f.Add([]byte("h\n"))
	f.Add([]byte("name,city\nRossi,\"Rome, Italy\"\n"))
	f.Add([]byte("\"x\"\"y\",z\n1,2\n"))
	f.Add([]byte("a,b\n1,\"2\n3\"\n"))
	f.Add([]byte("\n\na\nb\n"))
	f.Add([]byte("\"\"\nx\ny\n"))
	f.Add([]byte(",\n,\n"))
	f.Add([]byte("å,ß\n☃,日本\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("bound parser input")
		}
		tab, err := ReadCSV("fuzz", bytes.NewReader(data))
		if err != nil {
			return
		}
		checkRect := func(tt *Table) {
			t.Helper()
			for i, row := range tt.Rows {
				if len(row) != tt.NumCols() {
					t.Fatalf("row %d has %d fields, header has %d", i, len(row), tt.NumCols())
				}
			}
		}
		checkRect(tab)

		cur := tab
		var prev []byte
		for cycle := 0; cycle < 4; cycle++ {
			var buf bytes.Buffer
			if err := cur.WriteCSV(&buf); err != nil {
				t.Fatalf("cycle %d: WriteCSV: %v", cycle, err)
			}
			out := buf.Bytes()
			if prev != nil && bytes.Equal(prev, out) {
				return // fixpoint reached
			}
			prev = out
			next, err := ReadCSV("fuzz", bytes.NewReader(out))
			if err != nil {
				return // degenerate blank-header document, see doc comment
			}
			checkRect(next)
			if next.NumRows() > cur.NumRows() {
				t.Fatalf("cycle %d: re-read grew rows %d -> %d", cycle, cur.NumRows(), next.NumRows())
			}
			cur = next
		}
		t.Fatalf("write/read loop did not reach a fixpoint within 4 cycles (input %q)", data)
	})
}
