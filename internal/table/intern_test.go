package table

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomCell draws a cell value biased toward the pathologies the interner
// must survive: empty strings, repeated values, near-duplicates differing by
// one character edit (the shape workload.InjectLabelCollisions uses for its
// decoy labels), and unicode.
func randomCell(rng *rand.Rand, pool []string) string {
	switch rng.Intn(10) {
	case 0:
		return ""
	case 1, 2, 3, 4:
		return pool[rng.Intn(len(pool))]
	case 5:
		// Near-duplicate: mutate one character of a pool value.
		s := []rune(pool[rng.Intn(len(pool))])
		if len(s) == 0 {
			return "x"
		}
		s[rng.Intn(len(s))] = rune('a' + rng.Intn(26))
		return string(s)
	case 6:
		return "Ångström-" + pool[rng.Intn(len(pool))]
	default:
		return fmt.Sprintf("v%d", rng.Intn(1<<20))
	}
}

// TestInternedRoundTrip is the interner's property test: for arbitrary cell
// values — empty strings, duplicates, near-duplicate labels, unicode — the
// columnar backing must reproduce every cell exactly, group rows if and only
// if their tuples are equal, and keep per-column dictionaries bijective.
func TestInternedRoundTrip(t *testing.T) {
	pool := []string{"Rome", "Rome ", "rome", "Madrid", "Madr1d", "", "São Paulo", "a"}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cols := 1 + rng.Intn(5)
		rows := rng.Intn(400)
		tb := New("t", opaqueCols(cols)...)
		tb.Grow(rows)
		for i := 0; i < rows; i++ {
			row := make([]string, cols)
			for j := range row {
				row[j] = randomCell(rng, pool)
			}
			tb.Append(row...)
		}

		in := tb.Interned()
		if in.NumRows() != rows || in.NumCols() != cols {
			t.Fatalf("seed %d: shape %dx%d, want %dx%d", seed, in.NumRows(), in.NumCols(), rows, cols)
		}
		// Round trip: every cell decodes to exactly the original string, and
		// the dictionary maps it back to the same code.
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				code := in.Code(i, j)
				if got := in.Dict(j).Value(code); got != tb.Rows[i][j] {
					t.Fatalf("seed %d: cell (%d,%d) decoded %q, want %q", seed, i, j, got, tb.Rows[i][j])
				}
				if back := in.Dict(j).Code(tb.Rows[i][j]); back != code {
					t.Fatalf("seed %d: cell (%d,%d) re-encoded %d, want %d", seed, i, j, back, code)
				}
			}
		}
		// Grouping: rows share a group exactly when their tuples are equal.
		for i := 0; i < rows; i++ {
			for k := i + 1; k < rows; k++ {
				equal := true
				for j := 0; j < cols; j++ {
					if tb.Rows[i][j] != tb.Rows[k][j] {
						equal = false
						break
					}
				}
				if got := in.RowsEqual(i, k); got != equal {
					t.Fatalf("seed %d: RowsEqual(%d,%d)=%v, want %v", seed, i, k, got, equal)
				}
			}
		}
		// Groups partition the rows in first-occurrence order, each group's
		// Rep being its first member.
		seen := 0
		for g, gr := range in.Groups() {
			if len(gr.Rows) == 0 {
				t.Fatalf("seed %d: group %d empty", seed, g)
			}
			if gr.Rep != gr.Rows[0] {
				t.Fatalf("seed %d: group %d rep %d != first member %d", seed, g, gr.Rep, gr.Rows[0])
			}
			for _, row := range gr.Rows {
				if in.GroupOf(row) != g {
					t.Fatalf("seed %d: row %d in group %d but GroupOf says %d", seed, row, g, in.GroupOf(row))
				}
				seen++
			}
		}
		if seen != rows {
			t.Fatalf("seed %d: groups cover %d rows, want %d", seed, seen, rows)
		}
	}
}

func opaqueCols(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('A' + i))
	}
	return out
}

// TestInternedAllocationLean is the interner's allocation-budget test (the
// analogue of similarity's TestLookupAllocationLean): interning a table of R
// rows must stay within a small per-table budget — the fixed backing arrays
// plus one map entry per DISTINCT value/signature — never O(cells)
// allocations. A heavily duplicated 512x4 table has 32 distinct rows, so
// ~15 allocations (4 dicts + their map growth, codes, groupOf, signature
// key copies amortised) is generous; a per-cell or per-row allocation would
// blow through it by two orders of magnitude.
func TestInternedAllocationLean(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; counts are only meaningful without -race")
	}
	tb := New("t", "A", "B", "C", "D")
	tb.Grow(512)
	for i := 0; i < 512; i++ {
		d := i % 32
		tb.Append(fmt.Sprintf("p%d", d), fmt.Sprintf("c%d", d%8), "cap", "lang")
	}
	allocs := testing.AllocsPerRun(20, func() {
		tb.Interned()
	})
	// Budget: the Interned struct, codes, groupOf, groups, 4 dicts with
	// their value slices and maps, the signature map and its 32 key copies.
	// All size with DISTINCT counts except codes/groupOf (one allocation
	// each regardless of row count).
	if allocs > 120 {
		t.Errorf("Interned() allocates %.0f per table, want <= 120 (distinct-bounded)", allocs)
	}
}

// TestAppendArena pins the arena fast path: after Grow, appended rows carve
// out of one shared backing array (capacity-clamped so rows cannot bleed
// into each other) and appending allocates nothing per row.
func TestAppendArena(t *testing.T) {
	tb := New("t", "A", "B")
	tb.Grow(3)
	tb.Append("a1", "b1")
	tb.Append("a2", "b2")
	// The three-index cap must prevent an append to row 0's slice from
	// clobbering row 1's first cell.
	r0 := append(tb.Rows[0], "overflow")
	if tb.Rows[1][0] != "a2" {
		t.Fatalf("append to row 0 clobbered row 1: %v", tb.Rows[1])
	}
	_ = r0
	if raceEnabled {
		return
	}
	big := New("t", "A", "B")
	big.Grow(1200)
	// Reuse one argument slice: a literal at the call site would itself
	// allocate per call (variadic args escape into the fallback path).
	row := []string{"x", "y"}
	allocs := testing.AllocsPerRun(1000, func() {
		big.Append(row...)
	})
	if allocs > 0.1 {
		t.Errorf("arena Append allocates %.2f per row, want 0", allocs)
	}
}

// TestCompactPreservesCells pins Compact as a semantic no-op that canonises
// duplicate strings onto shared instances.
func TestCompactPreservesCells(t *testing.T) {
	tb := New("t", "A", "B")
	// Build values that are equal but distinct instances.
	v1 := "du" + "plicate"
	v2 := "dupli" + "cate"
	tb.Append(v1, "x")
	tb.Append(v2, "y")
	orig := tb.Clone()
	if tb.Compact() != tb {
		t.Fatal("Compact must return its receiver")
	}
	diff, err := tb.Diff(orig)
	if err != nil || len(diff) != 0 {
		t.Fatalf("Compact changed cells: diff=%v err=%v", diff, err)
	}
}

// TestExtendMatchesFreshBuild pins the Extend contract: extending a view
// over appended rows yields a view observationally identical to a fresh
// build over the merged table — same codes, same group IDs, same members.
func TestExtendMatchesFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := []string{"a", "b", "c", "dd", "ee"}
	for trial := 0; trial < 50; trial++ {
		cols := 1 + rng.Intn(4)
		total := 1 + rng.Intn(40)
		split := rng.Intn(total + 1)
		rows := make([][]string, total)
		for i := range rows {
			row := make([]string, cols)
			for j := range row {
				row[j] = vals[rng.Intn(len(vals))]
			}
			rows[i] = row
		}
		tbl := &Table{Name: "t", Columns: make([]string, cols), Rows: rows[:split]}
		in := tbl.Interned()
		tbl.Rows = rows
		in.Extend(tbl)
		want := tbl.Interned()
		if in.NumRows() != want.NumRows() || in.NumGroups() != want.NumGroups() {
			t.Fatalf("trial %d: rows/groups %d/%d, want %d/%d",
				trial, in.NumRows(), in.NumGroups(), want.NumRows(), want.NumGroups())
		}
		for i := 0; i < total; i++ {
			if in.GroupOf(i) != want.GroupOf(i) {
				t.Fatalf("trial %d: GroupOf(%d) = %d, want %d", trial, i, in.GroupOf(i), want.GroupOf(i))
			}
			for j := 0; j < cols; j++ {
				if in.Code(i, j) != want.Code(i, j) {
					t.Fatalf("trial %d: Code(%d,%d) = %d, want %d", trial, i, j, in.Code(i, j), want.Code(i, j))
				}
			}
		}
		for g := 0; g < want.NumGroups(); g++ {
			if in.Group(g).Rep != want.Group(g).Rep || !reflect.DeepEqual(in.Group(g).Rows, want.Group(g).Rows) {
				t.Fatalf("trial %d: group %d = %+v, want %+v", trial, g, in.Group(g), want.Group(g))
			}
		}
		for j := 0; j < cols; j++ {
			if in.Dict(j).Len() != want.Dict(j).Len() {
				t.Fatalf("trial %d: dict %d len %d, want %d", trial, j, in.Dict(j).Len(), want.Dict(j).Len())
			}
		}
	}
}
