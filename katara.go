// Package katara is a from-scratch Go implementation of KATARA (Chu et al.,
// SIGMOD 2015): a data cleaning system powered by knowledge bases and
// crowdsourcing. Given a (possibly dirty) table, an RDFS knowledge base and
// a crowd, it
//
//  1. discovers table patterns aligning columns to KB types and column
//     pairs to KB relationships (rank-join over tf-idf + semantic-coherence
//     scores, §4),
//  2. validates the best pattern with crowd questions scheduled
//     most-uncertain-variable-first (§5),
//  3. annotates every tuple as KB-validated, crowd-validated, or erroneous
//     (§6.1), enriching the KB with crowd-confirmed facts, and
//  4. generates top-k possible repairs for erroneous tuples through
//     inverted lists over KB instance graphs (§6.2).
//
// The heavy lifting lives in internal packages; this package is the stable
// surface: build or load a KB, wrap a crowd, and run the pipeline.
//
//	kb := katara.NewKB()
//	kb.ParseNTriples(f)
//	cleaner := katara.NewCleaner(kb, katara.TrustingCrowd(), katara.Options{})
//	report, err := cleaner.Clean(tbl)
package katara

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"time"

	"katara/internal/annotation"
	"katara/internal/crowd"
	"katara/internal/discovery"
	"katara/internal/kbstats"
	"katara/internal/pattern"
	"katara/internal/provenance"
	"katara/internal/rdf"
	"katara/internal/repair"
	"katara/internal/resolve"
	"katara/internal/similarity"
	"katara/internal/table"
	"katara/internal/telemetry"
	"katara/internal/validation"
)

// Re-exported building blocks. The aliases keep one set of types across the
// public API and the internal engine.
type (
	// KB is an in-memory RDFS knowledge base (triples, class/property
	// hierarchies, label index, N-Triples I/O).
	KB = rdf.Store
	// Table is a relational table with CSV I/O and error injection.
	Table = table.Table
	// Pattern is a table pattern: typed columns plus directed relationships.
	Pattern = pattern.Pattern
	// Crowd is a pool of (simulated) workers answering validation questions.
	Crowd = crowd.Crowd
	// Question is one crowdsourcing task.
	Question = crowd.Question
	// Repair is one candidate repair with its cost and cell changes.
	Repair = repair.Repair
	// TupleAnnotation is the per-tuple annotation outcome.
	TupleAnnotation = annotation.TupleAnnotation
	// Fact is a crowd-confirmed statement used to enrich the KB.
	Fact = annotation.Fact
	// ValidationOracle supplies ground truth for simulated pattern
	// validation (nil = trust the top-ranked pattern).
	ValidationOracle = validation.Oracle
	// FactOracle supplies ground truth for simulated fact verification.
	FactOracle = annotation.FactOracle
	// Tracer observes pipeline stage boundaries live (Options.Tracer).
	Tracer = telemetry.Tracer
	// TelemetryPipeline is the full instrumentation pipeline: counters,
	// stage timers, latency histograms, spans. Construct with NewTelemetry
	// and pass via Options.Pipeline when the caller needs to observe the run
	// live (attach a span journal, serve /metrics) rather than only read the
	// final Report.Timings snapshot.
	TelemetryPipeline = telemetry.Pipeline
	// Timings is the per-run instrumentation snapshot (Report.Timings):
	// stage wall-clocks plus the crowd-question / KB-lookup /
	// graphs-enumerated counters.
	Timings = telemetry.Snapshot
	// Transport routes crowd assignments; plug a fault injector in for
	// chaos testing (Options.Transport, NewFaultInjector).
	Transport = crowd.Transport
	// FaultConfig parameterises the deterministic fault injector.
	FaultConfig = crowd.FaultConfig
	// RetryPolicy bounds per-assignment retries with capped exponential
	// backoff (Options.Retry).
	RetryPolicy = crowd.RetryPolicy
	// EscalationPolicy is adaptive redundancy: extra assignments while the
	// vote margin is low (Options.Escalate).
	EscalationPolicy = crowd.EscalationPolicy
	// DegradePolicy picks what happens to tuples whose crowd questions went
	// unanswered after the budget or deadline ran out (Options.Degrade).
	DegradePolicy = annotation.DegradePolicy
	// CrowdStats is the crowd's cost and resilience accounting
	// (Report.Crowd).
	CrowdStats = crowd.Stats
	// ProvenanceRecorder collects per-cell evidence lineage — pattern
	// scores, MUVF steps, crowd questions with per-worker votes, annotation
	// checks and repair candidates (Options.Provenance). nil is the
	// disabled instrument: the run does no provenance work and the report
	// is byte-identical either way.
	ProvenanceRecorder = provenance.Recorder
	// Explanation is the evidence chain behind one (row, col) cell,
	// produced by ProvenanceRecorder.Explain.
	Explanation = provenance.Explanation
	// ProvenanceAudit is the run-level lineage aggregation
	// (ProvenanceRecorder.BuildAudit).
	ProvenanceAudit = provenance.Audit
)

// Degradation policies for unanswered tuples (Options.Degrade).
const (
	// DegradeTrustKB accepts unanswered tuples as KB incompleteness (the
	// paper's trusting default) without minting unverified facts.
	DegradeTrustKB = annotation.DegradeTrustKB
	// DegradeMarkUnknown labels unanswered tuples Unknown: neither trusted
	// nor repaired.
	DegradeMarkUnknown = annotation.DegradeMarkUnknown
)

// NewFaultInjector returns a deterministic, seeded chaos transport
// simulating an unreliable crowd: abandonment, transient errors, spam
// answers and latency per cfg.
func NewFaultInjector(cfg FaultConfig) *crowd.FaultInjector {
	return crowd.NewFaultInjector(cfg)
}

// NewBudget caps a run's crowd consumption: questions and/or assignments
// (0 = unlimited). Pass via Options or crowd.WithBudget.
func NewBudget(questions, assignments int) *crowd.Budget {
	return crowd.NewBudget(questions, assignments)
}

// Tuple annotation labels (§6.1). Unknown is the degraded outcome: the
// crowd became unreachable and the DegradeMarkUnknown policy applied.
const (
	ValidatedByKB    = annotation.ValidatedByKB
	ValidatedByCrowd = annotation.ValidatedByCrowd
	Erroneous        = annotation.Erroneous
	Unknown          = annotation.Unknown
)

// NewTelemetry returns an empty instrumentation pipeline for
// Options.Pipeline.
func NewTelemetry() *TelemetryPipeline { return telemetry.New() }

// NewProvenance returns an empty evidence-lineage recorder for
// Options.Provenance.
func NewProvenance() *ProvenanceRecorder { return provenance.NewRecorder() }

// NewKB returns an empty knowledge base.
func NewKB() *KB { return rdf.New() }

// NewTable returns an empty table with the given columns.
func NewTable(name string, columns ...string) *Table { return table.New(name, columns...) }

// NewCrowd returns a simulated crowd of n workers with the given mean
// accuracy, deterministic under seed.
func NewCrowd(n int, accuracy float64, seed int64) *Crowd {
	return crowd.New(n, accuracy, seed)
}

// TrustingCrowd returns a perfectly accurate crowd. Combined with nil
// oracles it yields the "trust the KB and assume incompleteness" policy:
// data missing from the KB is treated as correct and enriches the KB.
func TrustingCrowd() *Crowd { return crowd.Perfect(3) }

// Options configures a Cleaner.
type Options struct {
	// TopK is the number of candidate patterns discovered (default 10).
	TopK int
	// RepairK is the number of possible repairs per erroneous tuple
	// (default 3, the paper's operating point).
	RepairK int
	// Threshold is the value↔label similarity threshold (default 0.7).
	Threshold float64
	// QuestionsPerVariable (q) and TuplesPerQuestion (k_t) configure
	// pattern validation (defaults 3 and 5).
	QuestionsPerVariable int
	TuplesPerQuestion    int
	// Enrich adds crowd-confirmed facts to the KB (default true).
	Enrich *bool
	// Dedup enables distinct-signature execution (default true): the run
	// interns the table into per-column dictionaries, computes KB coverage
	// once per distinct row signature (fanning the verdict out to duplicate
	// rows), memoizes crowd questions so one question answers every
	// duplicate, and ranks repair candidates once per distinct erroneous
	// signature. Reports are byte-identical with dedup on or off except for
	// crowd accounting: dedup asks strictly fewer questions on tables with
	// duplicate rows (the propcheck dedup differential pins this down).
	Dedup *bool
	// MaxCandidates / MaxRows / MinSupport tune candidate generation; see
	// the discovery package. Zero values take the engine defaults.
	MaxCandidates int
	MaxRows       int
	MinSupport    float64
	// DiscoverPaths enables the §9 extension: column pairs with no direct
	// KB relationship are probed for two-hop property chains through
	// intermediate resources, attached to the validated pattern.
	DiscoverPaths bool
	// Seed drives tuple sampling for crowd questions (default 1).
	Seed int64
	// RepairMaxGraphs caps instance-graph enumeration during repair-index
	// construction (default 0 = unlimited). On large KBs an uncapped
	// enumeration can dwarf the rest of the pipeline; when the cap trips
	// the index is partial and repair recall degrades gracefully.
	RepairMaxGraphs int
	// RepairWeights holds optional per-column repair change costs (§6.2:
	// "the cost can also be weighted with confidences on data values").
	// Missing columns cost 1; default nil = unit costs everywhere.
	RepairWeights map[int]float64
	// Workers fans the embarrassingly parallel stages (candidate
	// generation, per-tuple KB coverage, instance-graph enumeration,
	// per-row top-k retrieval) out over this many goroutines. 0 or 1 runs
	// serially; negative uses GOMAXPROCS. Results are identical for every
	// value — crowd interaction always stays serial in row order.
	Workers int
	// Shards splits annotation coverage and repair retrieval into this many
	// contiguous row-range shards, each with its own telemetry pipeline
	// merged after the fan-out joins (see CleanShardedContext). 0 or 1 runs
	// unsharded; negative uses GOMAXPROCS. Reports are byte-identical for
	// every shard count — the propcheck `sharded ≡ unsharded` invariant.
	Shards int
	// Telemetry enables per-run instrumentation: Report.Timings carries
	// stage wall-clocks and pipeline counters (default off; disabled
	// instrumentation adds no overhead).
	Telemetry bool
	// Tracer streams stage boundaries as they happen; setting it implies
	// Telemetry.
	Tracer Tracer
	// Pipeline, when non-nil, is the caller-owned instrumentation pipeline
	// the run records into, taking precedence over Tracer and Telemetry.
	// Supplying it lets the caller attach a span journal or serve live
	// /metrics while the run is in flight; Report.Timings still carries the
	// end-of-run snapshot.
	Pipeline *TelemetryPipeline
	// Provenance, when non-nil, records every cell-level decision's
	// evidence lineage: pattern scores, MUVF validation steps, per-question
	// worker votes, per-tuple annotation checks and per-row repair
	// candidate lists. The recorder is reset at the start of each run and
	// carried on Report.Provenance; query it with Explain, serialise it
	// with WriteJournal, aggregate it with BuildAudit. nil (the default)
	// disables recording at zero cost, and the report is byte-identical
	// with recording on or off.
	Provenance *ProvenanceRecorder

	// Transport routes every crowd assignment; nil is the direct,
	// always-reliable in-process transport. Plug in NewFaultInjector to
	// exercise the resilience layer.
	Transport Transport
	// Retry bounds per-assignment delivery retries (zero value = engine
	// defaults: 3 attempts, 1ms base backoff capped at 16ms).
	Retry RetryPolicy
	// Escalate enables adaptive redundancy: extra assignments are posted
	// while the vote margin stays below Escalate.MinMargin (zero value =
	// the paper's fixed 3-way redundancy).
	Escalate EscalationPolicy
	// Budget caps the crowd questions one Clean run may consume
	// (0 = unlimited); BudgetAssignments caps paid assignments likewise.
	// When the budget runs out mid-run the Degrade policy takes over and
	// the Report flags the degraded decisions.
	Budget            int
	BudgetAssignments int
	// Deadline bounds one Clean run's wall-clock (0 = none). CleanContext's
	// context composes with it: whichever expires first wins. It is
	// enforced wherever the run can block — every crowd interaction
	// (assignment latency, backoff waits) and the stage boundaries —
	// not inside CPU-bound scans, so an expired deadline stops all further
	// crowd work and skips the repair stage rather than killing the run.
	Deadline time.Duration
	// Degrade picks the policy for tuples left unanswered by budget or
	// deadline exhaustion: DegradeTrustKB (default) or DegradeMarkUnknown.
	Degrade DegradePolicy

	// Incremental keeps a session alive after Clean so Append and
	// ApplyKBDelta can extend the run: appended rows reuse the validated
	// pattern (re-checked by crowd-free replay of the §5 decisions) and only
	// the delta is annotated and repaired; KB additions reconcile the report
	// without a full re-run when provably safe. The cumulative report is
	// semantically identical to one batch Clean of the merged inputs — the
	// propcheck incremental ≡ batch differential pins this down. Costs a KB
	// snapshot (CloneExact) and a private table copy per Clean; the caller's
	// table is never mutated by Append.
	Incremental bool

	// ValidationOracle answers "what is the true type/relationship"
	// questions; nil skips crowd validation and trusts the top pattern.
	ValidationOracle ValidationOracle
	// FactOracle answers "does this fact hold" questions; nil treats every
	// missing fact as KB incompleteness (the trusting policy).
	FactOracle FactOracle
}

func (o Options) withDefaults() Options {
	if o.TopK == 0 {
		o.TopK = 10
	}
	if o.RepairK == 0 {
		o.RepairK = 3
	}
	if o.Threshold == 0 {
		o.Threshold = similarity.DefaultThreshold
	}
	if o.QuestionsPerVariable == 0 {
		o.QuestionsPerVariable = 3
	}
	if o.TuplesPerQuestion == 0 {
		o.TuplesPerQuestion = 5
	}
	if o.Enrich == nil {
		t := true
		o.Enrich = &t
	}
	if o.Dedup == nil {
		t := true
		o.Dedup = &t
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers < 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Shards < 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	return o
}

// trustingFacts is the nil-FactOracle policy: every missing fact is assumed
// to be KB incompleteness, never a data error.
type trustingFacts struct{}

func (trustingFacts) TypeHolds(string, rdf.ID) bool           { return true }
func (trustingFacts) RelHolds(string, rdf.ID, string) bool    { return true }
func (trustingFacts) PathHolds(string, []rdf.ID, string) bool { return true }

// Cleaner runs the KATARA pipeline against one KB and crowd.
type Cleaner struct {
	kb    *KB
	stats *kbstats.Stats
	crowd *Crowd
	opts  Options
	// resolver is the shared entity-resolution cache: one memo per Cleaner,
	// threaded through discovery and annotation so a cell value resolved in
	// one stage is free in every later stage and run.
	resolver *resolve.Cache
	// session is the live incremental state (Options.Incremental): the KB
	// snapshot, memoised crowd decisions and cumulative report that Append
	// and ApplyKBDelta extend. nil until the first Clean.
	session *session
}

// NewCleaner builds a Cleaner. The KB statistics (entity counts, coherence
// tables) are computed once here, mirroring the paper's offline
// pre-computation. Resilience options (Transport, Retry, Escalate) are
// installed on the crowd here; leave them zero to keep a crowd configured
// directly via crowd.Options untouched.
func NewCleaner(kb *KB, c *Crowd, opts Options) *Cleaner {
	opts = opts.withDefaults()
	if opts.Transport != nil {
		c.SetTransport(opts.Transport)
	}
	if opts.Retry != (RetryPolicy{}) {
		c.SetRetry(opts.Retry)
	}
	if opts.Escalate != (EscalationPolicy{}) {
		c.SetEscalation(opts.Escalate)
	}
	return &Cleaner{
		kb:       kb,
		stats:    kbstats.New(kb),
		crowd:    c,
		opts:     opts,
		resolver: resolve.New(kb, opts.Threshold),
	}
}

// SetPipeline redirects subsequent runs' instrumentation to p (nil detaches
// it). Service layers that keep one incremental Cleaner across several jobs
// use this to point each increment at its own job's pipeline.
func (c *Cleaner) SetPipeline(p *TelemetryPipeline) { c.opts.Pipeline = p }

// ResolverStats returns the shared resolution cache's cumulative hit and
// miss counts (all runs of this Cleaner combined).
func (c *Cleaner) ResolverStats() (hits, misses int64) { return c.resolver.Stats() }

// KB returns the cleaner's knowledge base.
func (c *Cleaner) KB() *KB { return c.kb }

// DiscoverPatterns returns the top-k table patterns for t (§4).
func (c *Cleaner) DiscoverPatterns(t *Table) []*Pattern {
	cands := c.candidates(t)
	return discovery.TopK(cands, c.opts.TopK)
}

func (c *Cleaner) candidates(t *Table) *discovery.Candidates {
	return c.generate(t, nil)
}

func (c *Cleaner) generate(t *Table, tel *telemetry.Pipeline) *discovery.Candidates {
	dopts := discovery.Options{
		Threshold:     c.opts.Threshold,
		MaxCandidates: c.opts.MaxCandidates,
		MaxRows:       c.opts.MaxRows,
		MinSupport:    c.opts.MinSupport,
		Telemetry:     tel,
		Resolver:      c.resolver,
	}
	if c.opts.Workers > 1 {
		return discovery.GenerateParallel(t, c.stats, dopts, c.opts.Workers)
	}
	return discovery.Generate(t, c.stats, dopts)
}

// ValidatePattern selects one pattern from candidates via the crowd (§5).
// With no ValidationOracle configured it returns the top-scored pattern.
func (c *Cleaner) ValidatePattern(t *Table, candidates []*Pattern) (*Pattern, int) {
	p, questions, _ := c.validatePattern(context.Background(), t, candidates)
	return p, questions
}

// validatePattern is ValidatePattern under a context; the third return
// reports whether validation degraded (deadline or budget exhausted, best
// viable pattern used).
func (c *Cleaner) validatePattern(ctx context.Context, t *Table, candidates []*Pattern) (*Pattern, int, bool) {
	if len(candidates) == 0 {
		return nil, 0, false
	}
	if c.opts.ValidationOracle == nil {
		return candidates[0], 0, false
	}
	v := &validation.Validator{
		KB:                   c.kb,
		Table:                t,
		Crowd:                c.crowd,
		Oracle:               c.opts.ValidationOracle,
		QuestionsPerVariable: c.opts.QuestionsPerVariable,
		TuplesPerQuestion:    c.opts.TuplesPerQuestion,
		Rng:                  rand.New(rand.NewSource(c.opts.Seed)),
		Ctx:                  ctx,
		Prov:                 c.opts.Provenance,
	}
	if c.opts.Incremental && c.session != nil {
		// Record the crowd's decisions so later Appends can replay MUVF
		// without re-asking (the incremental drift check).
		v.Memo = c.session.memo
	}
	res := v.MUVF(candidates)
	return res.Pattern, res.QuestionsAsked, res.Degraded
}

// Annotate labels every tuple of t against pattern p (§6.1).
func (c *Cleaner) Annotate(t *Table, p *Pattern) *annotation.Result {
	return c.annotate(context.Background(), t, p, nil)
}

func (c *Cleaner) annotate(ctx context.Context, t *Table, p *Pattern, tel *telemetry.Pipeline) *annotation.Result {
	return c.annotator(ctx, p, tel).Annotate(t)
}

// annotator assembles the §6.1 annotator for one run; shared by the
// unsharded path (Annotate) and the shard orchestrator (EvaluateCoverage +
// AnnotateWith).
func (c *Cleaner) annotator(ctx context.Context, p *Pattern, tel *telemetry.Pipeline) *annotation.Annotator {
	oracle := c.opts.FactOracle
	if oracle == nil {
		oracle = trustingFacts{}
	}
	return &annotation.Annotator{
		KB:        c.kb,
		Pattern:   p,
		Crowd:     c.crowd,
		Oracle:    oracle,
		Ctx:       ctx,
		Degrade:   c.opts.Degrade,
		Threshold: c.opts.Threshold,
		Enrich:    *c.opts.Enrich,
		Workers:   c.opts.Workers,
		Telemetry: tel,
		Resolver:  c.resolver,
		Prov:      c.opts.Provenance,
	}
}

// Repairs generates top-k possible repairs for the given rows of t (§6.2).
func (c *Cleaner) Repairs(t *Table, p *Pattern, rows []int) map[int][]Repair {
	return c.repairs(t, p, rows, nil)
}

func (c *Cleaner) repairs(t *Table, p *Pattern, rows []int, tel *telemetry.Pipeline) map[int][]Repair {
	return c.repairsSharded(t, p, rows, tel, 1)
}

// Report is the outcome of an end-to-end Clean run.
type Report struct {
	// Pattern is the validated table pattern.
	Pattern *Pattern
	// Annotations holds one entry per tuple.
	Annotations []TupleAnnotation
	// Repairs maps erroneous rows to their top-k possible repairs.
	Repairs map[int][]Repair
	// NewFacts are the crowd-confirmed facts (KB enrichment by-product).
	NewFacts []Fact
	// QuestionsAsked counts all crowd questions consumed.
	QuestionsAsked int
	// Crowd is the run's crowd accounting: questions, paid assignments, and
	// the resilience counters (retries, abandonments, timeouts,
	// escalations).
	Crowd CrowdStats
	// Degraded flags which decisions were taken under a graceful-degradation
	// policy; its zero value means the run completed normally.
	Degraded DegradeReport
	// Timings holds the run's stage wall-clocks and pipeline counters; nil
	// unless Options.Telemetry (or Options.Tracer) is set.
	Timings *Timings
	// Provenance is the run's evidence-lineage recorder; nil unless
	// Options.Provenance was set.
	Provenance *ProvenanceRecorder
}

// DegradeReport flags the decisions of a run that were taken under a
// graceful-degradation policy after the budget or deadline ran out.
type DegradeReport struct {
	// PatternFallback: validation was cut short and the best-scored viable
	// pattern was used without full crowd confirmation.
	PatternFallback bool
	// Tuples counts annotations decided by the Degrade policy rather than
	// the crowd.
	Tuples int
	// RepairsSkipped: the deadline expired before the repair stage ran.
	RepairsSkipped bool
}

// Any reports whether any part of the run degraded.
func (d DegradeReport) Any() bool {
	return d.PatternFallback || d.RepairsSkipped || d.Tuples > 0
}

// ErrNoPattern is returned when no table pattern links the table to the KB;
// per §2, KATARA terminates in that case.
var ErrNoPattern = errors.New("katara: no table pattern found between the table and the KB")

// Clean runs the full pipeline: discover → validate → annotate → repair.
func (c *Cleaner) Clean(t *Table) (*Report, error) {
	return c.CleanContext(context.Background(), t)
}

// CleanContext is Clean bounded by ctx and the Options' budget/deadline.
// Exhausting either never aborts the run: the configured
// graceful-degradation policies take over (top-scored pattern, trust-KB or
// mark-unknown annotation, skipped repairs) and Report.Degraded records
// exactly which decisions degraded. Execution fans out across
// Options.Shards row-range shards (see CleanShardedContext); the report is
// identical for every shard count.
func (c *Cleaner) CleanContext(ctx context.Context, t *Table) (*Report, error) {
	return c.runClean(ctx, t, c.opts.Shards)
}

// BestKB picks, among several KBs, the one whose top discovered pattern
// scores highest for t — the "select the more relevant KB" behaviour of §2,
// and the paper's §9 multi-KB direction. It returns the index into kbs and
// the winning score, or -1 if no KB yields a pattern.
func BestKB(t *Table, kbs []*KB, opts Options) (int, float64) {
	opts = opts.withDefaults()
	bestIdx, bestScore := -1, 0.0
	for i, kb := range kbs {
		stats := kbstats.New(kb)
		cands := discovery.Generate(t, stats, discovery.Options{
			Threshold:     opts.Threshold,
			MaxCandidates: opts.MaxCandidates,
			MaxRows:       opts.MaxRows,
			MinSupport:    opts.MinSupport,
		})
		ps := discovery.TopK(cands, 1)
		if len(ps) > 0 && (bestIdx == -1 || ps[0].Score > bestScore) {
			bestIdx, bestScore = i, ps[0].Score
		}
	}
	return bestIdx, bestScore
}
